"""Cluster assembly: servers, load balancer, and the workflow engine.

The cluster plays the role of the Frontend + Load Balancer of Fig. 1/8 and
drives invocation traces through application workflows: every trace event
starts a workflow; each stage's functions are dispatched (least-loaded node
first) and the stage completes when its slowest member finishes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cancel.config import CancelConfig
from repro.cancel.runtime import CancelRuntime
from repro.guard.config import GuardConfig
from repro.guard.runtime import GuardRuntime
from repro.ha.config import HAConfig
from repro.ha.runtime import HARuntime
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.hardware.server import Server
from repro.platform.metrics import MetricsCollector
from repro.platform.reliability import ALL_DOWN_POLL_S, ReliabilityPolicy
from repro.platform.system import ClusterSystem, NodeSystem
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.tenancy.config import TenancyConfig
from repro.tenancy.runtime import TenancyRuntime
from repro.traces.trace import Trace
from repro.workloads.applications import Workflow
from repro.workloads.registry import workflow_for


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster (defaults match Section VII)."""

    n_servers: int = 5
    cores_per_server: int = 20
    slo_multiple: float = 5.0
    seed: int = 0
    scale: FrequencyScale = field(default_factory=FrequencyScale)
    power: PowerModel = field(default_factory=PowerModel)
    #: Extra simulated seconds after the trace ends to drain in-flight work.
    drain_s: float = 5.0
    #: Input-feature dispersion passed to invocation sampling (Fig. 22).
    input_dispersion: float = 1.0
    #: Heterogeneous machine mix (Section VI-E3): a sequence of
    #: ``(machine_type, ipc_factor)`` pairs cycled over the servers.
    #: None = all servers are identical ("haswell", 1.0).
    machine_mix: Optional[tuple] = None
    #: Frontend reliability policy (repro.faults). None = the original
    #: fire-and-wait dispatch path, byte-for-byte.
    reliability: Optional[ReliabilityPolicy] = None
    #: Graceful-degradation guards (repro.guard). None = the original
    #: unguarded code paths, byte-for-byte.
    guard: Optional[GuardConfig] = None
    #: High-availability layer (repro.ha): failure detection, controller
    #: failover, partition tolerance. None = the original code paths,
    #: byte-for-byte.
    ha: Optional[HAConfig] = None
    #: Energy multi-tenancy (repro.tenancy): per-tenant budgets, the
    #: power-cap governor, billing. None = the original code paths,
    #: byte-for-byte.
    tenancy: Optional[TenancyConfig] = None
    #: Cancellation & retry budgets (repro.cancel): deadline-propagating
    #: doom checks, cooperative kills, cluster-wide retry tokens. None =
    #: the original code paths, byte-for-byte.
    cancel: Optional[CancelConfig] = None

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("need at least one server")
        if self.cores_per_server < 1:
            raise ValueError("need at least one core per server")
        if self.slo_multiple <= 0:
            raise ValueError("SLO multiple must be positive")
        if self.drain_s < 0:
            raise ValueError("drain must be non-negative")


class Cluster:
    """A cluster running one serverless system."""

    def __init__(self, env: Environment, system: ClusterSystem,
                 config: Optional[ClusterConfig] = None,
                 fault_plan: Optional[object] = None):
        self.env = env
        self.system = system
        self.config = config or ClusterConfig()
        self.metrics = MetricsCollector()
        self.rng = RngRegistry(self.config.seed)
        mix = self.config.machine_mix or (("haswell", 1.0),)
        self.servers: List[Server] = [
            Server(env, server_id=i, n_cores=self.config.cores_per_server,
                   scale=self.config.scale, power=self.config.power,
                   machine_type=mix[i % len(mix)][0],
                   ipc_factor=mix[i % len(mix)][1])
            for i in range(self.config.n_servers)
        ]
        self.nodes: List[NodeSystem] = [
            system.make_node(env, server, self.metrics, self.rng)
            for server in self.servers
        ]
        #: Armed guard runtime (repro.guard), when a GuardConfig was given.
        self.guard: Optional[GuardRuntime] = None
        if self.config.guard is not None:
            self.guard = GuardRuntime(self, self.config.guard)
            env.guard = self.guard
            self.guard.arm()
        #: Armed tenancy runtime (repro.tenancy), when a TenancyConfig
        #: was given.
        self.tenancy: Optional[TenancyRuntime] = None
        if self.config.tenancy is not None:
            self.tenancy = TenancyRuntime(self, self.config.tenancy)
            env.tenancy = self.tenancy
            self.tenancy.arm()
        #: Armed HA runtime (repro.ha), when an HAConfig was given.
        self.ha: Optional[HARuntime] = None
        if self.config.ha is not None:
            if self.config.reliability is None:
                raise ValueError(
                    "the HA layer recovers stranded invocations through the"
                    " frontend's retry machinery; configure"
                    " ClusterConfig.reliability alongside ClusterConfig.ha")
            self.ha = HARuntime(self, self.config.ha)
            self.ha.arm()
        #: Armed cancellation runtime (repro.cancel), when a CancelConfig
        #: was given.
        self.cancel: Optional[CancelRuntime] = None
        if self.config.cancel is not None:
            self.cancel = CancelRuntime(self, self.config.cancel)
            env.cancel = self.cancel
            self.cancel.arm()
        self._rr_index = 0
        #: Workflows in flight (for drain diagnostics).
        self.inflight = 0
        #: Workflows ever submitted (the verify layer's lifecycle-
        #: conservation denominator; not part of any fingerprint).
        self.submitted_workflows = 0
        #: Workflow ids for trace spans (allocated unconditionally so
        #: traced and untraced runs walk identical code paths).
        self._wf_ids = itertools.count()
        #: Armed fault injector, when a non-empty plan was supplied.
        self.fault_injector = None
        if fault_plan is not None and fault_plan.events:
            if fault_plan.has_node_crashes and self.config.reliability is None:
                raise ValueError(
                    "a fault plan with node crashes loses in-flight jobs;"
                    " configure ClusterConfig.reliability so the frontend"
                    " re-dispatches them")
            if ((fault_plan.has_partitions
                 or fault_plan.has_controller_crashes)
                    and self.ha is None):
                raise ValueError(
                    "partition and controller-crash faults act on the"
                    " repro.ha link table and controller group; configure"
                    " ClusterConfig.ha to arm them")
            from repro.faults.injector import FaultInjector
            self.fault_injector = FaultInjector(self, fault_plan)
            self.fault_injector.arm()

    # ------------------------------------------------------------------
    # Load balancing (Fig. 1's Cluster Controller)
    # ------------------------------------------------------------------
    def pick_node(self, exclude: Optional[NodeSystem] = None
                  ) -> Optional[NodeSystem]:
        """Least outstanding jobs among up nodes; round-robin among ties.

        ``exclude`` skips one node (hedged re-dispatch wants a *different*
        machine) unless it is the only one standing. Returns None when
        every node is down.

        With the HA layer armed, nodes the membership table marks
        *suspected* (or dead, or unreachable over the dispatch link) are
        skipped too — hedges and retries must not land on a machine the
        detector is about to declare dead. If that filter would empty
        the candidate set, the plain up-set is used: sending work to a
        suspect node beats stalling the cluster on a false alarm.
        """
        up = [i for i, node in enumerate(self.nodes) if not node.down]
        if not up:
            return None
        if self.ha is not None:
            preferred = [i for i in up if self.ha.dispatchable(self.nodes[i])]
            if preferred:
                up = preferred
        if exclude is not None and len(up) > 1:
            up = [i for i in up if self.nodes[i] is not exclude] or up
        best = min(self.nodes[i].outstanding for i in up)
        candidates = [i for i in up if self.nodes[i].outstanding == best]
        choice = candidates[self._rr_index % len(candidates)]
        self._rr_index += 1
        return self.nodes[choice]

    # ------------------------------------------------------------------
    # Workflow engine
    # ------------------------------------------------------------------
    def submit_workflow(self, workflow: Workflow) -> None:
        """Start one end-to-end application invocation now."""
        self.submitted_workflows += 1
        if self.guard is not None and not self.guard.admit_workflow(
                workflow.name):
            return
        if self.tenancy is not None and not self.tenancy.admit_workflow(
                workflow.name):
            return
        self.env.process(self._run_workflow(workflow, self.env.now),
                         name=f"wf-{workflow.name}")

    def _run_workflow(self, workflow: Workflow, arrival_s: float):
        slo_s = workflow.slo_seconds(self.config.slo_multiple)
        deadlines = self.system.function_deadlines(workflow, arrival_s, slo_s)
        self.system.on_workflow_arrival(self, workflow, arrival_s, deadlines)
        policy = self.config.reliability
        cancel = self.cancel
        doom_deadline = (cancel.doom_deadline(arrival_s, slo_s)
                         if cancel is not None else None)
        self.inflight += 1
        wf_uid = next(self._wf_ids)
        self.env.trace.workflow_begin(wf_uid, workflow.name, slo_s=slo_s)
        failed = False
        try:
            for stage_index, stage in enumerate(workflow.stages):
                if (cancel is not None and stage_index > 0
                        and cancel.stage_doomed(doom_deadline)):
                    # Deadline propagation: the doom line passed while an
                    # earlier stage ran, so the rest of the chain cannot
                    # help the SLO — stop here instead of burning joules.
                    cancel.note_workflow_doomed(
                        workflow.name, wf_uid, stage_index,
                        cause="stage_boundary")
                    failed = True
                    break
                waits = []
                for fn_index, fn_model in enumerate(stage.functions):
                    spec = fn_model.sample_invocation(
                        self.rng.stream(f"inputs/{fn_model.name}"),
                        dispersion=self.config.input_dispersion)
                    deadline = (deadlines.get(fn_model.name)
                                if deadlines is not None else None)
                    if policy is None:
                        node = self.pick_node()
                        job = node.submit(
                            fn_model, spec, deadline, workflow.name,
                            seniority_time_s=arrival_s)
                        if cancel is not None:
                            cancel.tag_job(job, doom_deadline)
                        self.env.trace.link(wf_uid, job.job_id)
                        waits.append(job.done)
                    else:
                        idem_key = ((wf_uid, stage_index, fn_index)
                                    if self.ha is not None else None)
                        waits.append(self.env.process(
                            self._invoke_reliably(
                                fn_model, spec, deadline, workflow.name,
                                arrival_s, idem_key, wf_uid,
                                doom_deadline_s=doom_deadline),
                            name=f"invoke-{fn_model.name}"))
                yield self.env.all_of(waits)
                if policy is not None and any(p.value is None for p in waits):
                    # An invocation was lost for good: the workflow cannot
                    # produce its result, so later stages never run.
                    failed = True
                    break
                if cancel is not None and any(
                        getattr(w.value, "cancelled", False) for w in waits):
                    # A direct-dispatch invocation was doomed-dropped at
                    # dequeue: the chain has no result to continue with.
                    cancel.note_workflow_doomed(
                        workflow.name, wf_uid, stage_index,
                        cause="invocation_cancelled")
                    failed = True
                    break
            if failed:
                if (cancel is not None
                        and cancel.workflow_was_doomed(wf_uid)):
                    # Doomed is a sub-case of failed (the lifecycle
                    # equation still balances); the distinct trace status
                    # routes its completed work to the ledger's ``doomed``
                    # bucket.
                    self.env.trace.workflow_end(wf_uid, "doomed",
                                                slo_s=slo_s)
                else:
                    self.metrics.record_workflow_failure(workflow.name)
                    self.env.trace.workflow_end(wf_uid, "failed",
                                                slo_s=slo_s)
            else:
                latency_s = self.env.now - arrival_s
                self.metrics.record_workflow(
                    workflow.name, arrival_s, latency_s, slo_s)
                if self.env.trace.enabled:
                    self.env.trace.workflow_end(
                        wf_uid, "completed", latency_s=latency_s,
                        slo_s=slo_s, met_slo=latency_s <= slo_s + 1e-9)
        finally:
            self.inflight -= 1

    # ------------------------------------------------------------------
    # Reliability layer (repro.faults)
    # ------------------------------------------------------------------
    def _await_up_node(self, exclude: Optional[NodeSystem] = None,
                       deadline_s: Optional[float] = None):
        """Yield until some node is up, then return it (generator helper).

        ``deadline_s`` bounds the wait: during a full-cluster outage the
        loop used to poll unbounded even when the invocation's deadline
        had already passed; once the deadline is unmeetable it now
        returns None and the caller writes the invocation off instead of
        burning poll wake-ups on work that cannot succeed.
        """
        while True:
            node = self.pick_node(exclude)
            if node is not None:
                return node
            if deadline_s is not None and self.env.now >= deadline_s - 1e-9:
                return None
            yield self.env.timeout(ALL_DOWN_POLL_S)

    def _invoke_reliably(self, fn_model, spec, deadline_s: Optional[float],
                         benchmark: str, arrival_s: float,
                         idem_key=None, wf_uid: Optional[int] = None,
                         doom_deadline_s: Optional[float] = None):
        """Shepherd one invocation to completion under the policy.

        Submits a pristine clone of ``spec`` per attempt (work units are
        consumed in place), detects crash-aborted attempts via their
        ``done`` event, applies the per-attempt timeout and hedged
        re-dispatch, and backs off exponentially (with deterministic
        jitter) between retries. Returns the winning job, or None once
        every retry is exhausted.

        With the HA layer armed (``idem_key`` set), three things change:
        a completion only wins while its node's uplink to the frontend
        delivers (a partitioned result is invisible until the link
        heals), the loop also wakes on membership/link transitions, and
        an invocation stranded on a *suspected* node is re-dispatched —
        exactly once per idempotency key, via the journal — to a
        non-suspected node, with surviving duplicates fenced when a
        winner emerges.
        """
        policy = self.config.reliability
        guard = self.guard
        ha = self.ha
        cancel = self.cancel
        if ha is not None:
            ha.register_dispatch(idem_key)
        if cancel is not None:
            cancel.note_first_attempt()
        attempt = 0
        lost_to_crash_here = 0
        while True:
            if guard is not None and not guard.breaker_allows(fn_model.name):
                # The function's breaker is open: fail fast instead of
                # feeding the retry loop while the function is known-bad.
                self.metrics.lost_invocations += 1
                self.env.trace.instant("invocation_lost", "frontend",
                                       function=fn_model.name,
                                       attempts=attempt, fast_fail=True)
                return None
            if attempt > 0:
                if cancel is not None and cancel.retry_doomed(doom_deadline_s):
                    # Retrying cannot beat the doom line anymore: write
                    # the invocation off before it burns another attempt.
                    if wf_uid is not None:
                        cancel.note_workflow_doomed(
                            benchmark, wf_uid, -1, cause="retry_doomed")
                    self.metrics.lost_invocations += 1
                    self.env.trace.instant("invocation_lost", "frontend",
                                           function=fn_model.name,
                                           attempts=attempt, doomed=True)
                    return None
                if cancel is not None and not cancel.allow_retry(
                        fn_model.name, attempt):
                    # The cluster-wide retry budget is spent: dropping
                    # this retry is what keeps per-invocation policies
                    # from compounding into a retry storm.
                    self.metrics.lost_invocations += 1
                    self.env.trace.instant("invocation_lost", "frontend",
                                           function=fn_model.name,
                                           attempts=attempt,
                                           budget_exhausted=True)
                    return None
                self.metrics.record_retry()
                self.env.trace.instant("retry", "frontend",
                                       function=fn_model.name,
                                       attempt=attempt)
                draw = 0.0
                if policy.backoff_jitter > 0:
                    draw = float(self.rng.stream(
                        "reliability/jitter").uniform(-1.0, 1.0))
                backoff = policy.backoff_s(attempt, draw)
                if backoff > 0:
                    yield self.env.timeout(backoff)
                if cancel is not None and cancel.retry_doomed(doom_deadline_s):
                    # The doom line passed during backoff: the granted
                    # token never dispatched, so retire it and give up.
                    cancel.refund_retry(fn_model.name)
                    if wf_uid is not None:
                        cancel.note_workflow_doomed(
                            benchmark, wf_uid, -1, cause="retry_doomed")
                    self.metrics.lost_invocations += 1
                    self.env.trace.instant("invocation_lost", "frontend",
                                           function=fn_model.name,
                                           attempts=attempt, doomed=True)
                    return None
            bail_s = doom_deadline_s if doom_deadline_s is not None \
                else deadline_s
            node = yield from self._await_up_node(deadline_s=bail_s)
            if node is None:
                # Full-cluster outage outlived the deadline: no node came
                # back while the invocation could still succeed, so stop
                # polling instead of spinning on work that cannot win.
                if cancel is not None and attempt > 0:
                    cancel.refund_retry(fn_model.name)
                self.metrics.lost_invocations += 1
                self.env.trace.instant("invocation_lost", "frontend",
                                       function=fn_model.name,
                                       attempts=attempt,
                                       deadline_passed=True)
                return None
            job = node.submit(fn_model, spec.clone(), deadline_s, benchmark,
                              seniority_time_s=arrival_s)
            job.attempt = attempt
            if cancel is not None:
                cancel.tag_job(job, doom_deadline_s)
            if wf_uid is not None:
                self.env.trace.link(wf_uid, job.job_id)
            if ha is not None:
                job.ha_node = node
            jobs = [job]
            timeout_ev = (self.env.timeout(policy.invocation_timeout_s)
                          if policy.invocation_timeout_s is not None else None)
            hedge_ev = (self.env.timeout(policy.hedge_after_s)
                        if policy.hedge_after_s is not None
                        and policy.max_hedges > 0 else None)
            hedges_fired = 0
            attempt_failed = False
            while not attempt_failed:
                if ha is None:
                    waits = [j.done for j in jobs]
                else:
                    # An already-processed done event would make any_of
                    # fire instantly forever (the invisible-result case);
                    # wait on membership/link transitions instead.
                    waits = [j.done for j in jobs if not j.done.processed]
                    waits.append(ha.change_event())
                if timeout_ev is not None:
                    waits.append(timeout_ev)
                if hedge_ev is not None:
                    waits.append(hedge_ev)
                yield self.env.any_of(waits)
                if ha is None:
                    winner = next((j for j in jobs if j.finished), None)
                else:
                    winner = next((j for j in jobs if j.finished
                                   and ha.result_visible(j)), None)
                if winner is not None:
                    for other in jobs:
                        if (other is not winner and not other.aborted
                                and not other.cancelled):
                            if cancel is not None and cancel.cancels_hedges:
                                # The race is decided: kill the losers and
                                # reclaim their remaining energy instead
                                # of letting them run to completion.
                                cancel.cancel_attempt(other,
                                                      reason="hedge_loser")
                            else:
                                other.abandoned = True
                    if ha is not None:
                        ha.record_completion(idem_key, jobs, winner)
                    lost_to_crash_here += sum(1 for j in jobs if j.aborted)
                    self.metrics.crash_redispatches += lost_to_crash_here
                    if guard is not None:
                        met = (deadline_s is None
                               or self.env.now <= deadline_s + 1e-9)
                        guard.record_attempt_success(fn_model.name, met)
                    return winner
                if all(j.aborted for j in jobs):
                    lost_to_crash_here += len(jobs)
                    attempt_failed = True
                    break
                if cancel is not None and any(j.cancelled for j in jobs):
                    # The platform declared this work doomed (a dequeue
                    # drop): no sibling or retry can beat the doom line
                    # either, so kill the survivors and give up for good.
                    for j in jobs:
                        if not (j.aborted or j.cancelled or j.finished):
                            cancel.cancel_attempt(j, reason="doomed_sibling")
                    if wf_uid is not None:
                        cancel.note_workflow_doomed(
                            benchmark, wf_uid, -1, cause="dequeue_doomed")
                    self.metrics.lost_invocations += 1
                    self.env.trace.instant("invocation_lost", "frontend",
                                           function=fn_model.name,
                                           attempts=attempt + 1, doomed=True)
                    return None
                if timeout_ev is not None and timeout_ev.processed:
                    # Written off: with the cancel layer armed the
                    # survivors are killed (their remaining energy is
                    # reclaimed); otherwise they keep running and their
                    # outcome is wasted work.
                    for j in jobs:
                        if not j.aborted:
                            if (cancel is not None
                                    and cancel.cancels_timeouts):
                                cancel.cancel_attempt(j, reason="timeout")
                            else:
                                j.abandoned = True
                    lost_to_crash_here += sum(1 for j in jobs if j.aborted)
                    self.metrics.record_timeout()
                    self.env.trace.instant("invocation_timeout", "frontend",
                                           function=fn_model.name,
                                           attempt=attempt)
                    attempt_failed = True
                    break
                if hedge_ev is not None and hedge_ev.processed:
                    hedges_fired += 1
                    hedge_ev = (self.env.timeout(policy.hedge_after_s)
                                if hedges_fired < policy.max_hedges else None)
                    other = self.pick_node(exclude=node)
                    if other is not None and other is not node:
                        duplicate = other.submit(
                            fn_model, spec.clone(), deadline_s, benchmark,
                            seniority_time_s=arrival_s)
                        duplicate.attempt = attempt
                        if cancel is not None:
                            cancel.tag_job(duplicate, doom_deadline_s)
                        if wf_uid is not None:
                            self.env.trace.link(wf_uid, duplicate.job_id)
                        if ha is not None:
                            duplicate.ha_node = other
                        jobs.append(duplicate)
                        self.metrics.record_hedge()
                        self.env.trace.instant("hedge", "frontend",
                                               function=fn_model.name,
                                               job=duplicate.job_id)
                    continue
                if ha is not None:
                    target = ha.redispatch_target(idem_key, jobs,
                                                  exclude=node)
                    if target is not None:
                        duplicate = target.submit(
                            fn_model, spec.clone(), deadline_s, benchmark,
                            seniority_time_s=arrival_s)
                        duplicate.attempt = attempt
                        if cancel is not None:
                            cancel.tag_job(duplicate, doom_deadline_s)
                        if wf_uid is not None:
                            self.env.trace.link(wf_uid, duplicate.job_id)
                        duplicate.ha_node = target
                        jobs.append(duplicate)
                        continue
                # Some (not all) attempts crashed: drop them, keep waiting.
                lost_to_crash_here += sum(1 for j in jobs if j.aborted)
                jobs = [j for j in jobs if not j.aborted]
            if guard is not None:
                guard.record_attempt_failure(fn_model.name, node=node)
            attempt += 1
            if attempt > policy.max_retries:
                self.metrics.lost_invocations += 1
                self.env.trace.instant("invocation_lost", "frontend",
                                       function=fn_model.name,
                                       attempts=attempt)
                return None

    # ------------------------------------------------------------------
    # Trace driving
    # ------------------------------------------------------------------
    def _drive(self, trace: Trace,
               workflows: Dict[str, Workflow]):
        for event in trace:
            delay = event.time_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.submit_workflow(workflows[event.benchmark])

    def run_trace(self, trace: Trace,
                  workflows: Optional[Dict[str, Workflow]] = None) -> None:
        """Run a full trace to completion (plus the drain window)."""
        if workflows is None:
            workflows = {name: workflow_for(name)
                         for name in trace.invocation_counts()}
        missing = set(trace.invocation_counts()) - set(workflows)
        if missing:
            raise ValueError(f"trace references unknown workflows: {missing}")
        self.env.process(self._drive(trace, workflows), name="trace-driver")
        self.env.run(until=self.env.now + trace.duration_s
                     + self.config.drain_s)
        self.finalize()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        for node in self.nodes:
            node.finalize()

    @property
    def total_energy_j(self) -> float:
        """Whole-cluster metered energy (call after finalize)."""
        return sum(server.total_energy_j for server in self.servers)

    def energy_by_benchmark(self) -> Dict[str, float]:
        """Core-attributed energy per benchmark across all servers."""
        totals: Dict[str, float] = {}
        for server in self.servers:
            for consumer, joules in server.meter.by_consumer().items():
                totals[consumer] = totals.get(consumer, 0.0) + joules
        return totals

    def energy_by_component(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for server in self.servers:
            for component, joules in server.meter.by_component().items():
                totals[component] = totals.get(component, 0.0) + joules
        return totals
