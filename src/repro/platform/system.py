"""Interfaces that a serverless system implements to run on the platform.

A *system* (Baseline, Baseline+PowerCtrl, EcoFaaS) provides two things:

* a :class:`NodeSystem` per server — how invocations are scheduled and at
  what frequency cores run;
* a cluster-level deadline policy — how an application's SLO becomes
  per-function deadlines (the Workflow Controller in EcoFaaS, the
  proportional split in Baseline+PowerCtrl, nothing in Baseline).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

from repro.hardware.server import Server
from repro.platform.containers import ContainerManager
from repro.platform.job import Job
from repro.platform.metrics import MetricsCollector
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.applications import Workflow
from repro.workloads.model import FunctionModel
from repro.workloads.spec import InvocationSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster


class NodeSystem(abc.ABC):
    """Per-server controller: owns the server's cores and containers."""

    def __init__(self, env: Environment, server: Server,
                 metrics: MetricsCollector, rng: RngRegistry):
        self.env = env
        self.server = server
        self.metrics = metrics
        self.rng = rng
        #: Trace track for node-level events/counters (repro.obs).
        self.track = f"node{server.server_id}"
        self.containers = ContainerManager(env, owner=self.track)
        #: Reliability state (repro.faults): a crashed node is ``down`` —
        #: invisible to the load balancer — until its reboot completes.
        self.down = False
        #: How many times this node has crashed.
        self.crash_count = 0
        #: Fault multipliers, both 1.0 when healthy: a stalled frequency
        #: driver lengthens DVFS transitions; a storage/RPC latency spike
        #: lengthens block segments.
        self.dvfs_stall_factor = 1.0
        self.rpc_latency_factor = 1.0
        #: Jobs waiting for an in-flight cold start, by job id (they are
        #: not in any pool yet, so a crash must abort them here).
        self._awaiting_container: Dict[int, Job] = {}

    @abc.abstractmethod
    def submit(self, fn_model: FunctionModel, spec: InvocationSpec,
               deadline_s: Optional[float], benchmark: str,
               seniority_time_s: Optional[float] = None) -> Job:
        """Accept one function invocation; returns the in-flight job.

        ``seniority_time_s`` carries the owning application's arrival time
        so old-preempts-young treats late-stage functions of old requests
        as old jobs.
        """

    @property
    @abc.abstractmethod
    def outstanding(self) -> int:
        """Queued + running jobs (the load balancer's signal)."""

    def prewarm(self, fn_model: FunctionModel, budget_s: float,
                benchmark: str) -> None:
        """Start this function's container ahead of need (optional)."""

    def iter_pools(self) -> Iterable:
        """The node's live core pools (observability/counter sampling).

        Subclasses override; the default (no pools exposed) keeps node
        models without pool structure working untraced.
        """
        return ()

    def cancel_job(self, job: Job) -> bool:
        """Cancel one in-flight job on this node (repro.cancel).

        Tries each core pool, then the cold-start waiting room (jobs
        parked on an in-flight container boot live in neither pool).
        Returns False when the job is not on this node — node models
        without pool structure always decline, and the runtime falls
        back to write-off (``abandoned``) semantics.
        """
        for pool in self.iter_pools():
            if pool.cancel_job(job):
                return True
        waiting = self._awaiting_container.pop(job.job_id, None)
        if waiting is not None:
            waiting.cancel()
            return True
        return False

    def finalize(self) -> None:
        """Flush all energy accounting (end of run)."""
        self.server.finalize()

    # ------------------------------------------------------------------
    # Power-cap hooks (repro.tenancy)
    # ------------------------------------------------------------------
    def apply_frequency_ceiling(self, ceiling_ghz: Optional[float]) -> None:
        """Retune pools running above ``ceiling_ghz`` down to it.

        Called by the power-cap governor on every actuation change (and
        on reboot, to re-impose the active cap). The default (no pool
        structure to retune) is a no-op; node models with frequency
        control override. ``None`` lifts the ceiling — pools recover
        their levels through their own control loops, not here.
        """

    # ------------------------------------------------------------------
    # Fault hooks (repro.faults)
    # ------------------------------------------------------------------
    def dvfs_cost_scale(self) -> float:
        """Current multiplier on DVFS transition costs (pool hook)."""
        return self.dvfs_stall_factor

    def rpc_latency_scale(self) -> float:
        """Current multiplier on block-segment durations (pool hook)."""
        return self.rpc_latency_factor

    def crash(self) -> List[Job]:
        """Power-fail this node: every in-flight job is lost.

        Pools are emptied (:meth:`_abort_all_jobs`), jobs still waiting on
        a cold start are aborted, and all container state dies with the
        node. Returns the lost jobs (marked ``aborted``, prewarm
        pseudo-jobs excluded) so the frontend's reliability layer can
        re-dispatch them. The node refuses new work until :meth:`reboot`.
        The machine itself stays powered (a software/kernel crash), so
        background power keeps accruing through the outage.
        """
        if self.down:
            raise RuntimeError(f"node {self.server.server_id} already down")
        self.down = True
        self.crash_count += 1
        lost = self._abort_all_jobs()
        for job in self._awaiting_container.values():
            job.abort()
            lost.append(job)
        self._awaiting_container.clear()
        # Container state is process state: it does not survive the crash.
        # Waiters on in-flight cold starts were just aborted, so the old
        # manager's pending ready events can simply be dropped.
        self.containers = ContainerManager(self.env,
                                           self.containers.keep_alive_s,
                                           owner=self.track)
        survivors = [job for job in lost if not job.is_prewarm]
        self.env.trace.instant("node_crash", self.track,
                               jobs_lost=len(survivors),
                               crash_count=self.crash_count)
        return survivors

    def reboot(self) -> None:
        """Bring a crashed node back with a clean controller state.

        With checkpoints armed (repro.guard) the rebooted controller is
        resumed from its latest fresh snapshot instead of staying cold.
        """
        if not self.down:
            raise RuntimeError(
                f"node {self.server.server_id} is not down; cannot reboot")
        self._rebuild()
        self.down = False
        guard = getattr(self.env, "guard", None)
        if guard is not None:
            guard.maybe_restore(self)
        tenancy = getattr(self.env, "tenancy", None)
        if tenancy is not None:
            # A rebooted controller starts at the top frequency; the
            # active power cap must not be forgotten with it.
            tenancy.on_node_reboot(self)
        self.env.trace.instant("node_reboot", self.track)

    def kill_container(self, function_name: str) -> str:
        """Fault hook: kill one function's container on this node.

        Returns the container's prior state (see
        :meth:`ContainerManager.kill`).
        """
        return self.containers.kill(function_name)

    def _abort_all_jobs(self) -> List[Job]:
        """Subclass hook: empty every pool, returning the lost jobs."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support fault injection")

    def _rebuild(self) -> None:
        """Subclass hook: reset controller state after a crash."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support fault injection")

    # ------------------------------------------------------------------
    # Guard hooks (repro.guard)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Optional[Dict[str, object]]:
        """Snapshot this controller's transient control state.

        Subclasses with state worth preserving across a crash override
        this; the default (None) opts the node out of checkpointing.
        """
        return None

    def restore_state(self, state: Dict[str, object]) -> bool:
        """Resume from a :meth:`checkpoint_state` snapshot (post-reboot).

        Returns True when the state was applied. The default refuses —
        a node that cannot checkpoint cannot restore either.
        """
        return False

    def watchdog_check(self, factor: float) -> bool:
        """Kick this controller if its control loop looks stuck.

        ``factor`` scales the controller's own refresh period into the
        staleness bound. Returns True when a forced refresh happened.
        The default (no periodic loop to watch) never kicks.
        """
        return False

    # ------------------------------------------------------------------
    # Shared cold-start plumbing for subclasses
    # ------------------------------------------------------------------
    def _attach_container(self, fn_model: FunctionModel, job: Job,
                          stream_name: str) -> Optional[object]:
        """Resolve container state for ``job``.

        Returns None when the job can be scheduled right away (warm
        container, or this job now carries the cold-start work), or the
        ready event the caller must wait on (another cold start is in
        flight).
        """
        state = self.containers.state(fn_model.name)
        if state == "warm":
            self.containers.touch(fn_model.name)
            self.containers.record_warm_hit()
            return None
        if state == "starting":
            return self.containers.ready_event(fn_model.name)
        # Cold: this job boots the container as its setup work.
        self.containers.begin_cold_start(fn_model.name)
        job.setup_work = fn_model.sample_cold_start_work(
            self.rng.stream(stream_name))
        job.cold_start = True
        job._segment_index = -1
        job.on_setup_done = (
            lambda name=fn_model.name: self.containers.finish_cold_start(name))
        return None

    def _submit_with_container(
            self, fn_model: FunctionModel, job: Job, stream_name: str,
            dispatch: Callable[[FunctionModel, Job], None]) -> None:
        """Resolve container state for ``job``, then hand it to ``dispatch``.

        The fault-aware version of the plain attach-and-wait pattern: when
        the cold start the job was waiting on is killed mid-boot (its ready
        event fires with a ``None`` payload), the job re-resolves — one
        waiter becomes the new booter — and when the job was aborted (node
        crash) while waiting, it is silently dropped. With no faults
        injected neither branch ever triggers and the event ordering is
        identical to the original plumbing.
        """
        if job.aborted or job.cancelled:
            return
        wait = self._attach_container(fn_model, job, stream_name)
        if wait is None:
            dispatch(fn_model, job)
            return
        self._awaiting_container[job.job_id] = job
        wait.callbacks.append(
            lambda ev, fn=fn_model, j=job, s=stream_name, d=dispatch:
            self._container_wait_done(ev, fn, j, s, d))

    def _container_wait_done(self, event, fn_model: FunctionModel, job: Job,
                             stream_name: str,
                             dispatch: Callable[[FunctionModel, Job], None]
                             ) -> None:
        self._awaiting_container.pop(job.job_id, None)
        if job.aborted or job.cancelled:
            return
        if event.value is None:
            # The cold start this job was waiting on was killed: re-resolve.
            self._submit_with_container(fn_model, job, stream_name, dispatch)
            return
        dispatch(fn_model, job)


class ClusterSystem(abc.ABC):
    """Whole-cluster behaviour of one evaluated system."""

    #: Human-readable system name used in reports.
    name: str = "system"

    @abc.abstractmethod
    def make_node(self, env: Environment, server: Server,
                  metrics: MetricsCollector, rng: RngRegistry) -> NodeSystem:
        """Build this system's per-server controller."""

    @abc.abstractmethod
    def function_deadlines(self, workflow: Workflow, arrival_s: float,
                           slo_s: float) -> Optional[Dict[str, float]]:
        """Absolute completion deadline per function, or None (best effort)."""

    def on_workflow_arrival(self, cluster: "Cluster", workflow: Workflow,
                            arrival_s: float,
                            deadlines: Optional[Dict[str, float]]) -> None:
        """Hook at workflow admission (EcoFaaS prewarms containers here)."""
