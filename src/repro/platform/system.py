"""Interfaces that a serverless system implements to run on the platform.

A *system* (Baseline, Baseline+PowerCtrl, EcoFaaS) provides two things:

* a :class:`NodeSystem` per server — how invocations are scheduled and at
  what frequency cores run;
* a cluster-level deadline policy — how an application's SLO becomes
  per-function deadlines (the Workflow Controller in EcoFaaS, the
  proportional split in Baseline+PowerCtrl, nothing in Baseline).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Optional

from repro.hardware.server import Server
from repro.platform.containers import ContainerManager
from repro.platform.job import Job
from repro.platform.metrics import MetricsCollector
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.applications import Workflow
from repro.workloads.model import FunctionModel
from repro.workloads.spec import InvocationSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster


class NodeSystem(abc.ABC):
    """Per-server controller: owns the server's cores and containers."""

    def __init__(self, env: Environment, server: Server,
                 metrics: MetricsCollector, rng: RngRegistry):
        self.env = env
        self.server = server
        self.metrics = metrics
        self.rng = rng
        self.containers = ContainerManager(env)

    @abc.abstractmethod
    def submit(self, fn_model: FunctionModel, spec: InvocationSpec,
               deadline_s: Optional[float], benchmark: str,
               seniority_time_s: Optional[float] = None) -> Job:
        """Accept one function invocation; returns the in-flight job.

        ``seniority_time_s`` carries the owning application's arrival time
        so old-preempts-young treats late-stage functions of old requests
        as old jobs.
        """

    @property
    @abc.abstractmethod
    def outstanding(self) -> int:
        """Queued + running jobs (the load balancer's signal)."""

    def prewarm(self, fn_model: FunctionModel, budget_s: float,
                benchmark: str) -> None:
        """Start this function's container ahead of need (optional)."""

    def finalize(self) -> None:
        """Flush all energy accounting (end of run)."""
        self.server.finalize()

    # ------------------------------------------------------------------
    # Shared cold-start plumbing for subclasses
    # ------------------------------------------------------------------
    def _attach_container(self, fn_model: FunctionModel, job: Job,
                          stream_name: str) -> Optional[object]:
        """Resolve container state for ``job``.

        Returns None when the job can be scheduled right away (warm
        container, or this job now carries the cold-start work), or the
        ready event the caller must wait on (another cold start is in
        flight).
        """
        state = self.containers.state(fn_model.name)
        if state == "warm":
            self.containers.touch(fn_model.name)
            self.containers.record_warm_hit()
            return None
        if state == "starting":
            return self.containers.ready_event(fn_model.name)
        # Cold: this job boots the container as its setup work.
        self.containers.begin_cold_start(fn_model.name)
        job.setup_work = fn_model.sample_cold_start_work(
            self.rng.stream(stream_name))
        job.cold_start = True
        job._segment_index = -1
        job.on_setup_done = (
            lambda name=fn_model.name: self.containers.finish_cold_start(name))
        return None


class ClusterSystem(abc.ABC):
    """Whole-cluster behaviour of one evaluated system."""

    #: Human-readable system name used in reports.
    name: str = "system"

    @abc.abstractmethod
    def make_node(self, env: Environment, server: Server,
                  metrics: MetricsCollector, rng: RngRegistry) -> NodeSystem:
        """Build this system's per-server controller."""

    @abc.abstractmethod
    def function_deadlines(self, workflow: Workflow, arrival_s: float,
                           slo_s: float) -> Optional[Dict[str, float]]:
        """Absolute completion deadline per function, or None (best effort)."""

    def on_workflow_arrival(self, cluster: "Cluster", workflow: Workflow,
                            arrival_s: float,
                            deadlines: Optional[Dict[str, float]]) -> None:
        """Hook at workflow admission (EcoFaaS prewarms containers here)."""
