"""Core-pool scheduling.

One :class:`CorePoolScheduler` drives a set of cores at (nominally) one
frequency — exactly the paper's Frequency Pool Scheduler (Section VI-C):
user-level, FIFO, an older ready job preempts the youngest running job,
negligible scheduling overhead, and Estimated-Wait-Time counters
(EWT += expected ``T_Run`` on registration, −= on completion;
``T_Queue ≈ EWT / n_cores``).

The same class, configured differently, also implements the baselines:

* ``switch_on_idle=False`` gives the run-to-completion model of
  Gemini-style controllers (the core is held through a job's I/O blocks);
* ``per_job_frequency=True`` re-programs the core to each job's chosen
  frequency at dispatch, paying ``switch_cost()`` (the sandboxed-userspace
  path for Baseline+PowerCtrl, the kernel path for EcoFaaS boosts).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.hardware.core import Core
from repro.platform.job import Job
from repro.sim.engine import Environment

#: Default process context-switch cost, seconds (a few µs, Section VI-C).
CONTEXT_SWITCH_S = 5e-6


@dataclass
class SchedulerStats:
    """Counters a pool reports to the node controller every refresh."""

    served: int = 0
    total_wait_s: float = 0.0
    boosted: int = 0
    wanted_lower_freq: int = 0
    preemptions: int = 0
    frequency_switches: int = 0

    def reset(self) -> "SchedulerStats":
        """Return a copy and zero the live counters (end of a window)."""
        snapshot = SchedulerStats(
            self.served, self.total_wait_s, self.boosted,
            self.wanted_lower_freq, self.preemptions, self.frequency_switches)
        self.served = 0
        self.total_wait_s = 0.0
        self.boosted = 0
        self.wanted_lower_freq = 0
        self.preemptions = 0
        self.frequency_switches = 0
        return snapshot


class CorePoolScheduler:
    """A FIFO, preemptive, user-level scheduler over a pool of cores."""

    def __init__(self, env: Environment, cores: List[Core],
                 frequency_ghz: float, name: str = "pool",
                 context_switch_s: float = CONTEXT_SWITCH_S,
                 switch_on_idle: bool = True,
                 preemptive: bool = True,
                 per_job_frequency: bool = False,
                 switch_cost: Optional[Callable[[], float]] = None,
                 freq_change_cost_s: float = 0.0,
                 on_complete: Optional[Callable[[Job], None]] = None,
                 on_core_released: Optional[Callable[[Core], None]] = None,
                 cost_scale: Optional[Callable[[], float]] = None,
                 block_latency: Optional[Callable[[], float]] = None):
        if context_switch_s < 0:
            raise ValueError(f"negative context switch cost {context_switch_s}")
        if freq_change_cost_s < 0:
            raise ValueError(f"negative freq change cost {freq_change_cost_s}")
        self.env = env
        self.name = name
        self.frequency_ghz = frequency_ghz
        self.context_switch_s = context_switch_s
        self.switch_on_idle = switch_on_idle
        self.preemptive = preemptive
        self.per_job_frequency = per_job_frequency
        self.switch_cost = switch_cost or (lambda: 0.0)
        self.freq_change_cost_s = freq_change_cost_s
        self.on_complete = on_complete
        self.on_core_released = on_core_released
        #: Fault hooks (repro.faults). ``cost_scale`` multiplies every
        #: frequency-transition cost (a stalled DVFS driver lengthens
        #: switches); ``block_latency`` multiplies block-segment durations
        #: (storage/RPC latency spikes). None = no scaling at all.
        self.cost_scale = cost_scale
        self.block_latency = block_latency
        self.stats = SchedulerStats()

        self._cores: List[Core] = []
        self._available: List[Core] = []
        self._pending_removal: Set[int] = set()
        #: Ready queue ordered by seniority (oldest first).
        self._ready: List[Tuple[Tuple[float, int], Job]] = []
        #: Jobs currently on a core, keyed by core id.
        self._running: Dict[int, Job] = {}
        #: Jobs parked in a block segment, keyed by job id (they will need
        #: a core again — unless a crash aborts them first).
        self._blocked_jobs: Dict[int, Job] = {}
        #: Estimated-Wait-Time counter: Σ expected *remaining* T_Run of
        #: queued, running, and blocked jobs.
        self._ewt_s = 0.0
        self._ewt_amounts: Dict[int, float] = {}
        self._t_run_at_dispatch: Dict[int, float] = {}
        for core in cores:
            self.add_core(core, set_frequency=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cores(self) -> List[Core]:
        return list(self._cores)

    @property
    def n_cores(self) -> int:
        return len(self._cores)

    @property
    def queue_length(self) -> int:
        return len(self._ready)

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def blocked_count(self) -> int:
        return len(self._blocked_jobs)

    @property
    def outstanding(self) -> int:
        """Jobs queued or running (blocked jobs are not counted)."""
        return self.queue_length + self.running_count

    @property
    def load(self) -> int:
        """All jobs this pool is responsible for: queued+running+blocked."""
        return self.queue_length + self.running_count + self.blocked_count

    @property
    def ewt_seconds(self) -> float:
        """The raw Estimated-Wait-Time counter (Σ expected T_Run)."""
        return max(0.0, self._ewt_s)

    def estimated_queue_seconds(self) -> float:
        """The paper's T_Queue estimate: EWT / pool size."""
        if not self._cores:
            return float("inf")
        return self.ewt_seconds / len(self._cores)

    # ------------------------------------------------------------------
    # Elasticity (node controller interface)
    # ------------------------------------------------------------------
    def _transition_cost(self, base_s: float) -> float:
        """A frequency-transition cost, under any active DVFS-stall fault."""
        if self.cost_scale is None:
            return base_s
        return base_s * self.cost_scale()

    def add_core(self, core: Core, set_frequency: bool = True) -> None:
        """Adopt a core into the pool, retuning it to the pool frequency."""
        if any(c.core_id == core.core_id for c in self._cores):
            raise ValueError(f"core {core.core_id} already in pool {self.name}")
        self._pending_removal.discard(core.core_id)
        self._cores.append(core)
        core.pool = self.name
        if set_frequency and abs(core.frequency - self.frequency_ghz) > 1e-12:
            if self.env.trace.enabled:
                self.env.trace.instant(
                    "freq_transition", self.name, core=core.core_id,
                    from_ghz=core.frequency, to_ghz=self.frequency_ghz,
                    reason="adopt")
            core.set_frequency(
                self.frequency_ghz,
                cost_s=self._transition_cost(self.freq_change_cost_s))
            self.stats.frequency_switches += 1
        if core.busy:
            raise ValueError(f"core {core.core_id} joined pool while busy")
        self._available.append(core)
        self.env.trace.counter(self.name, "pool_size", len(self._cores))
        self._dispatch()

    def release_idle_core(self) -> Optional[Core]:
        """Give up one idle core immediately, or None if all are busy."""
        if not self._available:
            return None
        core = self._available.pop()
        self._cores.remove(core)
        core.pool = None
        self.env.trace.counter(self.name, "pool_size", len(self._cores))
        return core

    def request_core_removal(self) -> bool:
        """Mark one busy core for removal once its current job finishes.

        Returns False when every core is already pending removal.
        """
        for core in self._cores:
            if core.core_id not in self._pending_removal:
                if core.busy:
                    self._pending_removal.add(core.core_id)
                    return True
        return False

    def set_frequency(self, freq_ghz: float,
                      cost_s: Optional[float] = None) -> None:
        """Retune the whole pool (the elastic refresh path).

        Busy cores stall for ``cost_s`` (defaults to the pool's kernel
        cost) and continue at the new speed.
        """
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be positive: {freq_ghz}")
        if abs(freq_ghz - self.frequency_ghz) < 1e-12:
            return
        actual_cost = self.freq_change_cost_s if cost_s is None else cost_s
        actual_cost = self._transition_cost(actual_cost)
        if self.env.trace.enabled:
            self.env.trace.instant(
                "freq_transition", self.name, from_ghz=self.frequency_ghz,
                to_ghz=freq_ghz, n_cores=len(self._cores), reason="retune")
        self.frequency_ghz = freq_ghz
        for core in self._cores:
            core.set_frequency(freq_ghz, cost_s=actual_cost)
        self.stats.frequency_switches += len(self._cores)

    # ------------------------------------------------------------------
    # Job intake
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Register a job for execution in this pool."""
        if job.registered_run_seconds is None:
            # Fall back to the oracle view when no prediction was attached.
            job.registered_run_seconds = job.remaining_run_seconds(
                self.frequency_ghz)
        amount = job.registered_run_seconds
        self._ewt_s += amount
        self._ewt_amounts[job.job_id] = amount
        if job.boosted:
            self.stats.boosted += 1
        if job.wanted_lower_freq:
            self.stats.wanted_lower_freq += 1
        if self.env.trace.enabled:
            self.env.trace.counter(self.name, "ewt_s", self.ewt_seconds)
            self.env.trace.counter(self.name, "queue_len",
                                   len(self._ready) + 1)
        job.note_enqueue(pool=self.name)
        heapq.heappush(self._ready, (job.seniority, job))
        self._dispatch()

    def drain_ready(self) -> List[Job]:
        """Remove and return every job still waiting in the ready queue.

        Their EWT contributions move with them (the caller re-submits each
        job elsewhere). Running and blocked jobs are not touched.
        """
        drained = []
        while self._ready:
            _, job = heapq.heappop(self._ready)
            remaining = self._ewt_amounts.pop(job.job_id, None)
            if remaining is not None:
                self._ewt_s -= remaining
                job.registered_run_seconds = remaining
            drained.append(job)
        return drained

    def abort_all(self) -> List[Job]:
        """Tear down the pool's whole job population (node crash).

        Queued, running, and blocked jobs are all lost: running cores are
        preempted, EWT counters and per-job bookkeeping are zeroed, and
        every lost job is returned marked ``aborted`` (so its late block
        timers are ignored and its ``done`` event fires for any waiting
        reliability loop). The cores stay in the pool, idle.
        """
        lost: List[Job] = []
        while self._ready:
            _, job = heapq.heappop(self._ready)
            lost.append(job)
        for core_id in list(self._running):
            core = next(c for c in self._cores if c.core_id == core_id)
            lost.append(self._running.pop(core_id))
            core.preempt()
        lost.extend(self._blocked_jobs.values())
        self._blocked_jobs.clear()
        self._ewt_s = 0.0
        self._ewt_amounts.clear()
        self._t_run_at_dispatch.clear()
        self._pending_removal.clear()
        self._available = list(self._cores)
        for core in self._cores:
            core.blocked_hold = None
        for job in lost:
            job.abort()
        return lost

    def cancel_job(self, job: Job) -> bool:
        """Remove one job from this pool and mark it cancelled.

        The targeted counterpart of :meth:`abort_all` (repro.cancel):
        covers all three residences — queued (dropped from the ready
        heap), running (its core is preempted and freed), and blocked
        (removed from the books; the pending wake timer finds the
        cancelled flag and ignores it). EWT bookkeeping is released like
        a completion. Returns False when the job is not in this pool.
        """
        if job.finished or job.aborted or job.cancelled:
            return False
        for index, (_, queued) in enumerate(self._ready):
            if queued is job:
                self._ready.pop(index)
                heapq.heapify(self._ready)
                self._ewt_s -= self._ewt_amounts.pop(job.job_id, 0.0)
                self._t_run_at_dispatch.pop(job.job_id, None)
                job.cancel()
                return True
        for core_id, running in list(self._running.items()):
            if running is job:
                core = next(c for c in self._cores if c.core_id == core_id)
                del self._running[core_id]
                core.preempt()
                self._consume_ewt(job)
                self._ewt_s -= self._ewt_amounts.pop(job.job_id, 0.0)
                job.cancel()
                self._core_freed(core)
                return True
        if job.job_id in self._blocked_jobs:
            del self._blocked_jobs[job.job_id]
            self._ewt_s -= self._ewt_amounts.pop(job.job_id, 0.0)
            self._t_run_at_dispatch.pop(job.job_id, None)
            core = next((c for c in self._cores if c.blocked_hold is job),
                        None)
            job.cancel()
            if core is not None:
                # Run-to-completion mode held the core through the block;
                # release it now instead of at the ignored wake-up.
                core.blocked_hold = None
                self._core_freed(core)
            return True
        return False

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    def _job_frequency(self, job: Job) -> float:
        if self.per_job_frequency and job.chosen_freq_ghz is not None:
            return job.chosen_freq_ghz
        return self.frequency_ghz

    def _dispatch(self) -> None:
        while self._ready:
            head = self._ready[0][1]
            cancel = self.env.cancel
            if (cancel is not None and not head.cancelled
                    and cancel.dequeue_doomed(head, self.frequency_ghz)
                    and self.cancel_job(head)):
                # Doomed at dequeue (repro.cancel): its remaining work
                # cannot fit before the doom line, so dispatching it
                # would only burn joules.
                cancel.note_doomed_drop(head, self.name)
                continue
            core = self._pick_core(head)
            if core is None:
                return
            _, job = heapq.heappop(self._ready)
            self._start_on(core, job)

    def _pick_core(self, candidate: Job) -> Optional[Core]:
        """An idle core, or a core running a younger job to preempt."""
        if self._available:
            return self._available.pop()
        if not self.preemptive:
            return None
        youngest_core = None
        youngest_seniority = None
        for core_id, running in self._running.items():
            if youngest_seniority is None or running.seniority > youngest_seniority:
                youngest_seniority = running.seniority
                youngest_core = core_id
        if youngest_core is None or youngest_seniority <= candidate.seniority:
            return None
        core = next(c for c in self._cores if c.core_id == youngest_core)
        victim = self._running.pop(youngest_core)
        if self.env.trace.enabled:
            self.env.trace.instant(
                "preemption", self.name, core=youngest_core,
                victim=victim.job_id, victim_fn=victim.function_name,
                winner=candidate.job_id, winner_fn=candidate.function_name)
        core.preempt()
        self._consume_ewt(victim)
        victim.note_enqueue(pool=self.name)
        heapq.heappush(self._ready, (victim.seniority, victim))
        self.stats.preemptions += 1
        return core

    def _start_on(self, core: Core, job: Job,
                  context_switch: bool = True) -> None:
        target_freq = self._job_frequency(job)
        if self.per_job_frequency and job.dispatch_correction is not None:
            target_freq = job.dispatch_correction(target_freq)
        tenancy = getattr(self.env, "tenancy", None)
        if tenancy is not None:
            # Power-cap ceiling (repro.tenancy): every path that decides
            # a core's speed — dispatch choice, boost, correction — runs
            # through here, so this one clamp enforces the cap.
            clamped = tenancy.clamp_freq(target_freq)
            if clamped is not None:
                target_freq = clamped
        pre_overhead = self.context_switch_s if context_switch else 0.0
        if abs(core.frequency - target_freq) > 1e-12:
            # The frequency change occupies the core before work starts
            # (sandboxed path for PowerCtrl, kernel path for boosts).
            if self.env.trace.enabled:
                self.env.trace.instant(
                    "freq_transition", self.name, core=core.core_id,
                    from_ghz=core.frequency, to_ghz=target_freq,
                    job=job.job_id, reason="dispatch")
            pre_overhead += self._transition_cost(self.switch_cost())
            core.set_frequency(target_freq, cost_s=0.0)
            self.stats.frequency_switches += 1
        self._running[core.core_id] = job
        job.note_dispatch(target_freq)
        self._t_run_at_dispatch[job.job_id] = job.t_run
        core.start(job.current_work(), consumer=job.benchmark,
                   on_complete=self._on_core_done, sink=job,
                   pre_overhead_s=pre_overhead)

    def _consume_ewt(self, job: Job) -> None:
        """Shrink the job's EWT share by the run time it just consumed.

        The EWT counter estimates *future* pool work; a job that has
        already executed most of its run segments should only contribute
        its remainder (otherwise blocked jobs inflate T_Queue estimates).
        """
        used = job.t_run - self._t_run_at_dispatch.pop(job.job_id, job.t_run)
        amount = self._ewt_amounts.get(job.job_id, 0.0)
        decrement = min(amount, max(0.0, used))
        self._ewt_s -= decrement
        if job.job_id in self._ewt_amounts:
            self._ewt_amounts[job.job_id] = amount - decrement

    def _on_core_done(self, core: Core) -> None:
        job = self._running.pop(core.core_id)
        self._consume_ewt(job)
        block = job.advance()
        if block is not None:
            block_s = block.seconds
            if self.block_latency is not None:
                block_s *= self.block_latency()
            job.note_block(block_s)
            self._blocked_jobs[job.job_id] = job
            if self.switch_on_idle:
                self._core_freed(core)
                wake = self.env.timeout(block_s)
                wake.callbacks.append(
                    lambda ev, job=job: self._unblock_requeue(job))
            else:
                # Run-to-completion: the core idles but stays held.
                core.blocked_hold = job
                wake = self.env.timeout(block_s)
                wake.callbacks.append(
                    lambda ev, job=job, core=core:
                    self._unblock_resume(core, job))
            return
        if job.is_complete:
            self._finish(core, job)
            return
        # Setup (cold start) finished; continue into the first run segment
        # on the same core without a context switch.
        self._running[core.core_id] = job
        self._t_run_at_dispatch[job.job_id] = job.t_run
        core.start(job.current_work(), consumer=job.benchmark,
                   on_complete=self._on_core_done, sink=job)

    def _unblock_requeue(self, job: Job) -> None:
        if job.aborted or job.cancelled:
            # The node crashed (or the cancel layer killed the job) while
            # it was blocked; it is already off the pool's books.
            return
        del self._blocked_jobs[job.job_id]
        job.skip_block()
        job.note_enqueue(pool=self.name)
        heapq.heappush(self._ready, (job.seniority, job))
        self._dispatch()

    def _unblock_resume(self, core: Core, job: Job) -> None:
        if job.aborted or job.cancelled:
            return
        del self._blocked_jobs[job.job_id]
        job.skip_block()
        job.note_dispatch(core.frequency)
        self._running[core.core_id] = job
        self._t_run_at_dispatch[job.job_id] = job.t_run
        # start() accrues the held-idle segment first, so the hold tag must
        # still be visible to the ledger there; clear it afterwards.
        core.start(job.current_work(), consumer=job.benchmark,
                   on_complete=self._on_core_done, sink=job)
        core.blocked_hold = None

    def _finish(self, core: Core, job: Job) -> None:
        self._ewt_s -= self._ewt_amounts.pop(job.job_id, 0.0)
        self.stats.served += 1
        self.stats.total_wait_s += job.t_queue
        if self.env.trace.enabled:
            self.env.trace.counter(self.name, "ewt_s", self.ewt_seconds)
        job.complete()
        if self.on_complete is not None:
            self.on_complete(job)
        self._core_freed(core)

    def _core_freed(self, core: Core) -> None:
        if core.core_id in self._pending_removal:
            self._pending_removal.discard(core.core_id)
            self._cores.remove(core)
            core.pool = None
            self.env.trace.counter(self.name, "pool_size", len(self._cores))
            if self.on_core_released is not None:
                self.on_core_released(core)
            return
        self._available.append(core)
        self._dispatch()
