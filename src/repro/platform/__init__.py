"""The serverless platform substrate.

Implements the platform structure of Fig. 1/8 that all three evaluated
systems share: request frontend, load balancer, per-node container
management with cold starts, core-pool scheduling with
context-switch-on-idle and old-preempts-young semantics, metrics
collection, and the workflow engine that executes multi-function
applications stage by stage.

System-specific behaviour (how deadlines are assigned and how frequencies
are chosen) plugs in through :class:`~repro.platform.system.NodeSystem`
and :class:`~repro.platform.system.DeadlinePolicy`.
"""

from repro.platform.cluster import Cluster, ClusterConfig
from repro.platform.containers import ContainerManager
from repro.platform.job import Job
from repro.platform.metrics import (
    FunctionRecord,
    MetricsCollector,
    WorkflowRecord,
    percentile,
)
from repro.platform.reliability import ReliabilityPolicy
from repro.platform.scheduler import CorePoolScheduler, SchedulerStats

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ContainerManager",
    "CorePoolScheduler",
    "FunctionRecord",
    "Job",
    "MetricsCollector",
    "ReliabilityPolicy",
    "SchedulerStats",
    "WorkflowRecord",
    "percentile",
]
