"""Per-node container lifecycle with cold starts and keep-alive.

A function has at most one container state per node: *cold* (no container),
*starting* (a cold start is executing), or *warm* (usable, until the
keep-alive expires). Jobs arriving while a container is starting wait for
the in-flight cold start instead of launching their own — and EcoFaaS's
prewarming (Section VI-E1) initiates cold starts ahead of need through the
same machinery.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.engine import Environment
from repro.sim.events import Event

#: Default keep-alive, seconds (typical FaaS platforms hold containers for
#: minutes; 60 s keeps simulations dynamic).
KEEP_ALIVE_S = 60.0


class ContainerManager:
    """Tracks container state for every function on one node."""

    def __init__(self, env: Environment, keep_alive_s: float = KEEP_ALIVE_S,
                 owner: str = "containers"):
        if keep_alive_s <= 0:
            raise ValueError(f"keep-alive must be positive: {keep_alive_s}")
        self.env = env
        self.keep_alive_s = keep_alive_s
        #: Trace track label (``node<i>`` when owned by a node controller).
        self.owner = owner
        self._warm_until: Dict[str, float] = {}
        self._starting: Dict[str, Event] = {}
        #: Cold starts whose container was killed mid-boot: their eventual
        #: :meth:`finish_cold_start` must be swallowed, not warm anything.
        self._doomed: Dict[str, int] = {}
        #: Statistics.
        self.cold_starts = 0
        self.warm_hits = 0
        self.kills = 0

    def state(self, function_name: str) -> str:
        """``"warm"``, ``"starting"``, or ``"cold"``."""
        if function_name in self._starting:
            return "starting"
        if self._warm_until.get(function_name, -1.0) > self.env.now:
            return "warm"
        return "cold"

    def is_warm(self, function_name: str) -> bool:
        return self.state(function_name) == "warm"

    def touch(self, function_name: str) -> None:
        """Refresh the keep-alive of a warm container (it was just used)."""
        if self.state(function_name) != "warm":
            raise RuntimeError(
                f"cannot touch {function_name!r}: container is"
                f" {self.state(function_name)}")
        self._warm_until[function_name] = self.env.now + self.keep_alive_s

    def begin_cold_start(self, function_name: str) -> Event:
        """Transition cold → starting; returns the container-ready event.

        The caller is responsible for executing the cold-start work and
        then calling :meth:`finish_cold_start`.
        """
        if self.state(function_name) != "cold":
            raise RuntimeError(
                f"cold start of {function_name!r} while"
                f" {self.state(function_name)}")
        event = Event(self.env)
        self._starting[function_name] = event
        self.cold_starts += 1
        self.env.trace.instant("container_boot", self.owner,
                               function=function_name)
        return event

    def ready_event(self, function_name: str) -> Event:
        """The in-flight cold start's ready event (state must be starting)."""
        try:
            return self._starting[function_name]
        except KeyError:
            raise RuntimeError(
                f"{function_name!r} has no cold start in flight") from None

    def finish_cold_start(self, function_name: str) -> None:
        """Transition starting → warm and wake all waiters.

        A boot whose container was killed mid-flight (see :meth:`kill`)
        lands here too once its setup work drains; it is swallowed — the
        container it built no longer exists, so nothing becomes warm.
        """
        doomed = self._doomed.get(function_name, 0)
        if doomed > 0:
            if doomed == 1:
                del self._doomed[function_name]
            else:
                self._doomed[function_name] = doomed - 1
            return
        event = self._starting.pop(function_name, None)
        if event is None:
            raise RuntimeError(
                f"{function_name!r} had no cold start in flight")
        self._warm_until[function_name] = self.env.now + self.keep_alive_s
        self.env.trace.instant("container_warm", self.owner,
                               function=function_name)
        event.succeed(function_name)

    def kill(self, function_name: str) -> str:
        """Fault hook: the function's container on this node dies now.

        Returns the state the container was in. A *warm* container simply
        disappears (an invocation currently executing is assumed to finish
        under the runtime's termination grace period); the next arrival
        pays a fresh cold start. A *starting* container discards its
        in-flight boot: the ready event fires with a ``None`` payload so
        waiters can re-resolve (one of them launches a new cold start —
        nobody is left stuck), and the doomed boot's eventual
        ``finish_cold_start`` is swallowed. Killing a cold container is a
        no-op.
        """
        prior = self.state(function_name)
        self._warm_until.pop(function_name, None)
        event = self._starting.pop(function_name, None)
        if event is not None:
            self._doomed[function_name] = (
                self._doomed.get(function_name, 0) + 1)
            event.succeed(None)
        if prior != "cold":
            self.kills += 1
            self.env.trace.instant("container_kill", self.owner,
                                   function=function_name, prior=prior)
        return prior

    def record_warm_hit(self) -> None:
        self.warm_hits += 1

    def warm_functions(self) -> list:
        """Names of currently warm functions (for tests/inspection)."""
        return [name for name in self._warm_until
                if self._warm_until[name] > self.env.now
                and name not in self._starting]
