"""Frontend reliability policies (the recovery half of ``repro.faults``).

A :class:`ReliabilityPolicy` tells the cluster frontend how to shepherd an
invocation to completion when nodes can crash or stall: retry with
exponential backoff plus jitter, an optional per-attempt timeout after
which the attempt is written off (it keeps executing — that energy is
wasted work, charged to retries), and optional hedged re-dispatch of a
slow attempt to a second node, first completion wins.

With no policy configured the frontend uses the original fire-and-wait
path untouched, so enabling ``repro.faults`` is strictly opt-in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: How long the frontend waits before re-checking for an up node when the
#: whole cluster is down (rare; keeps the retry loop deterministic).
ALL_DOWN_POLL_S = 0.05


@dataclass(frozen=True)
class ReliabilityPolicy:
    """How the frontend retries, times out, and hedges invocations."""

    #: Re-dispatch attempts after the first one (0 = fail immediately on
    #: loss).
    max_retries: int = 4
    #: First backoff delay; attempt ``n`` waits
    #: ``backoff_base_s * backoff_multiplier**(n-1)``, jittered.
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    #: Uniform multiplicative jitter: the delay is scaled by a factor in
    #: ``[1 - jitter, 1 + jitter]`` (0 = deterministic backoff).
    backoff_jitter: float = 0.1
    #: Give up on an attempt after this many seconds (None = wait forever;
    #: crashed attempts are detected immediately either way).
    invocation_timeout_s: Optional[float] = None
    #: Launch a duplicate attempt on another node once the primary has run
    #: this long (None = no hedging).
    hedge_after_s: Optional[float] = None
    #: Duplicates allowed per attempt when hedging is on: after each
    #: ``hedge_after_s`` without a result another duplicate is launched,
    #: up to this many (1 = the original single-hedge behavior).
    max_hedges: int = 1

    def __post_init__(self) -> None:
        for name in ("backoff_base_s", "backoff_multiplier",
                     "backoff_jitter"):
            value = getattr(self, name)
            if math.isnan(value) or math.isinf(value):
                raise ValueError(f"{name} must be finite: {value}")
        for name in ("invocation_timeout_s", "hedge_after_s"):
            value = getattr(self, name)
            if value is not None and (math.isnan(value) or math.isinf(value)):
                raise ValueError(f"{name} must be finite: {value}")
        if self.max_retries < 0:
            raise ValueError(f"negative max_retries {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(f"negative backoff base {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff multiplier must be >= 1: {self.backoff_multiplier}")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(
                f"backoff jitter must be in [0, 1): {self.backoff_jitter}")
        if (self.invocation_timeout_s is not None
                and self.invocation_timeout_s <= 0):
            raise ValueError(
                f"invocation timeout must be positive:"
                f" {self.invocation_timeout_s}")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError(
                f"hedge delay must be positive: {self.hedge_after_s}")
        if self.max_hedges < 0:
            raise ValueError(f"negative max_hedges {self.max_hedges}")

    def backoff_s(self, attempt: int, jitter_draw: float = 0.0) -> float:
        """Backoff before retry ``attempt`` (1-based).

        ``jitter_draw`` is a uniform draw in [-1, 1] from the caller's
        deterministic stream.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        return delay * (1.0 + self.backoff_jitter * jitter_draw)
