"""Global-controller replicas: epoch-numbered leases and election state.

The reproduced EcoFaaS control plane has one global controller that
computes MILP splits and pool-resize targets. Here it becomes a replica
group: ``ctl0`` starts as leader holding a lease of ``lease_s`` seconds;
standbys watch the lease and, when it expires, the *lowest-id replica
that is up and reachable from the frontend* takes over with an
incremented epoch. The rule needs no quorum messages or randomness, so
elections are bit-repeatable — and the epoch numbers give consumers a
total order to fence stale decisions with.

This module is pure state; the :class:`HARuntime` drives renewals,
elections, and reachability checks against the link table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class ControllerReplica:
    rid: int
    #: Link-table endpoint name, ``"ctl<rid>"``.
    endpoint: str
    down: bool = False
    down_at: Optional[float] = None
    #: This replica's local belief — a partitioned stale leader keeps
    #: believing (with its old epoch) until it can hear the group again.
    believes_leader: bool = False
    believed_epoch: int = 0


@dataclass
class ControllerGroup:
    n: int
    lease_s: float
    replicas: List[ControllerReplica] = field(default_factory=list)
    #: The group's true epoch (max over any replica's believed epoch).
    epoch: int = 1
    leader_id: int = 0
    lease_expires_s: float = 0.0
    #: (time, new leader id, new epoch) — one row per failover.
    elections: List[Tuple[float, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.replicas:
            self.replicas = [ControllerReplica(rid=i, endpoint=f"ctl{i}")
                             for i in range(self.n)]
            self.replicas[0].believes_leader = True
            self.replicas[0].believed_epoch = self.epoch
            self.lease_expires_s = self.lease_s

    def leader(self) -> ControllerReplica:
        return self.replicas[self.leader_id]

    def lease_expired(self, now: float) -> bool:
        return now >= self.lease_expires_s

    def renew(self, now: float) -> None:
        self.lease_expires_s = now + self.lease_s

    def elect(self, candidate: ControllerReplica, now: float) -> int:
        """Install ``candidate`` as leader under a fresh epoch."""
        self.epoch += 1
        self.leader_id = candidate.rid
        candidate.believes_leader = True
        candidate.believed_epoch = self.epoch
        self.renew(now)
        self.elections.append((now, candidate.rid, self.epoch))
        return self.epoch

    def crash(self, rid: int, now: float) -> ControllerReplica:
        replica = self.replicas[rid]
        replica.down = True
        replica.down_at = now
        # A crashed process holds no beliefs; only *partitioned* replicas
        # can act as stale leaders.
        replica.believes_leader = False
        return replica

    def rejoin(self, rid: int) -> ControllerReplica:
        replica = self.replicas[rid]
        replica.down = False
        return replica

    def snapshot(self) -> Tuple[Tuple[float, int, int], ...]:
        """Immutable election log for cross-run comparison."""
        return tuple(self.elections)
