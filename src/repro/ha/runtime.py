"""The per-cluster HA runtime: heartbeats, membership, leases, fencing.

One :class:`HARuntime` is created by a :class:`Cluster` whose config
carries an :class:`HAConfig`, and installed as ``env.ha`` alongside a
:class:`LinkTable` as ``env.links`` (the same opt-in pattern as
``env.trace`` / ``env.guard``). Every HA instrumentation point in the
platform checks for ``None`` first, so HA-off runs execute the pre-HA
code byte-for-byte.

Four periodic processes run while armed:

* per-node **heartbeat senders** — skipped while the node is down or its
  uplink to the frontend is cut, with flight time scaled by the node's
  RPC slowdown factor;
* the **detector sweep** — evaluates every node's phi against the
  membership state machine and accounts suspicions;
* the **lease loop** — the leader renews its epoch-numbered lease at
  half-lease cadence (only while it can exchange messages with the
  frontend) and reachable replicas gossip the current epoch, which
  demotes a healed stale leader;
* the **election loop** — on lease expiry, deterministically elects the
  lowest-id up/reachable replica under ``epoch + 1``.

All decisions are pure functions of simulation time and state — no
random draws — so suspicion timestamps, leader epochs, and the
re-dispatch journal are bit-repeatable across same-seed runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.ha.config import HAConfig
from repro.ha.controller import ControllerGroup, ControllerReplica
from repro.ha.detector import (
    ALIVE,
    DEAD,
    SUSPECTED,
    MembershipTable,
    PhiAccrualDetector,
)
from repro.ha.journal import IdempotencyKey, RedispatchJournal
from repro.ha.links import LinkTable
from repro.obs.prof import profiled

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.platform.job import Job
    from repro.platform.system import NodeSystem

#: Link-table endpoint of the dispatcher/frontend (the membership and
#: lease registries live there), matching the frontend trace track.
FRONTEND = "frontend"


class HARuntime:
    """The armed high-availability layer of one cluster."""

    def __init__(self, cluster: "Cluster", config: HAConfig):
        self.cluster = cluster
        self.config = config
        self.env = cluster.env
        self.metrics = cluster.metrics
        self.links = LinkTable()
        self.links.on_heal(self._link_healed)
        self.detector = PhiAccrualDetector(
            expected_interval_s=(config.heartbeat_period_s
                                 + config.heartbeat_latency_s),
            window=config.detector_window,
            min_std_s=config.min_interval_std_s)
        self.membership = MembershipTable(self.detector,
                                          config.phi_threshold,
                                          config.dead_after_s)
        self.controllers = ControllerGroup(n=config.n_controllers,
                                           lease_s=config.lease_s)
        self.journal = RedispatchJournal()
        #: Highest decision epoch each consumer endpoint has accepted.
        self._seen_epochs = {}
        self._change = None

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Install the env hooks and start the periodic HA processes."""
        self.env.links = self.links
        self.env.ha = self
        self.controllers.lease_expires_s = self.env.now + self.config.lease_s
        for node in self.cluster.nodes:
            self.detector.register(node.track, self.env.now)
            self.env.process(self._heartbeat_loop(node),
                             name=f"ha-heartbeat-{node.track}")
        self.env.process(self._detector_loop(), name="ha-detector")
        self.env.process(self._lease_loop(), name="ha-lease")
        self.env.process(self._election_loop(), name="ha-election")

    # ------------------------------------------------------------------
    # Change notification (wakes shepherd loops stuck on invisible jobs)
    # ------------------------------------------------------------------
    def change_event(self):
        """A rearmable event fired on any membership or link transition."""
        if self._change is None or self._change.triggered:
            self._change = self.env.event()
        return self._change

    def _notify_change(self) -> None:
        if self._change is not None and not self._change.triggered:
            self._change.succeed()

    def _link_healed(self, src: str, dst: str) -> None:
        self.env.trace.instant("ha_link_heal", FRONTEND, src=src, dst=dst)
        self._notify_change()

    # ------------------------------------------------------------------
    # Heartbeats + failure detection
    # ------------------------------------------------------------------
    def _heartbeat_loop(self, node: "NodeSystem"):
        period = self.config.heartbeat_period_s
        while True:
            yield self.env.timeout(period)
            if node.down or not self.links.delivers(node.track, FRONTEND):
                self.metrics.ha_heartbeats_lost += 1
                continue
            flight = self.config.heartbeat_latency_s * node.rpc_latency_scale()
            if flight > 0:
                yield self.env.timeout(flight)
            self.detector.heartbeat(node.track, self.env.now)

    def _detector_loop(self):
        period = self.config.heartbeat_period_s
        while True:
            yield self.env.timeout(period)
            now = self.env.now
            for node in self.cluster.nodes:
                name = node.track
                new_state = self.membership.evaluate(name, now)
                if new_state is None:
                    continue
                if new_state == SUSPECTED:
                    self._account_suspicion(node, now)
                elif new_state == ALIVE:
                    self.env.trace.instant("ha_alive", FRONTEND, node=name)
                elif new_state == DEAD:
                    self.env.trace.instant("ha_dead", FRONTEND, node=name)
                self._notify_change()

    def _account_suspicion(self, node: "NodeSystem", now: float) -> None:
        # False suspicion = the node process is actually alive (it may
        # still be partitioned — accrual detectors cannot tell a cut
        # link from a crash, which is exactly why duplicates need
        # fencing downstream).
        genuine = node.down
        self.metrics.ha_suspicions += 1
        if not genuine:
            self.metrics.ha_false_suspicions += 1
        last = self.detector.last_arrival(node.track)
        if last is not None:
            # Latency from the first missed heartbeat to the suspicion.
            expected = last + self.detector.expected_interval_s
            self.metrics.ha_suspicion_latencies_s.append(
                max(0.0, now - expected))
        self.env.trace.instant(
            "ha_suspect", FRONTEND, node=node.track, genuine=genuine,
            phi=round(self.detector.phi(node.track, now), 3))

    # ------------------------------------------------------------------
    # Leases, election, epoch fencing
    # ------------------------------------------------------------------
    def _lease_loop(self):
        group = self.controllers
        while True:
            yield self.env.timeout(self.config.lease_s * 0.5)
            leader = group.leader()
            if (not leader.down and leader.believes_leader
                    and self.links.reachable(leader.endpoint, FRONTEND)):
                group.renew(self.env.now)
                self.metrics.ha_lease_renewals += 1
            # Epoch gossip: every replica that can hear the frontend
            # learns the current epoch; a healed stale leader is demoted
            # the moment it is reachable again.
            for replica in group.replicas:
                if replica.down or not self.links.reachable(replica.endpoint,
                                                            FRONTEND):
                    continue
                if (replica.believes_leader
                        and replica.rid != group.leader_id):
                    self.env.trace.instant(
                        "ha_demote", FRONTEND, replica=replica.rid,
                        stale_epoch=replica.believed_epoch,
                        epoch=group.epoch)
                replica.believes_leader = (replica.rid == group.leader_id)
                replica.believed_epoch = group.epoch

    def _election_loop(self):
        group = self.controllers
        while True:
            yield self.env.timeout(self.config.election_period_s)
            now = self.env.now
            if not group.lease_expired(now):
                continue
            candidates = [r for r in group.replicas if not r.down
                          and self.links.reachable(r.endpoint, FRONTEND)]
            if not candidates:
                continue
            old = group.leader()
            lost_at = (old.down_at if old.down and old.down_at is not None
                       else group.lease_expires_s)
            winner = min(candidates, key=lambda r: r.rid)
            epoch = group.elect(winner, now)
            failover_s = max(0.0, now - lost_at)
            self.metrics.ha_failovers += 1
            self.metrics.ha_failover_times_s.append(failover_s)
            self.env.trace.instant(
                "ha_failover", FRONTEND, leader=winner.rid, epoch=epoch,
                failover_s=round(failover_s, 6))
            self.env.trace.counter(FRONTEND, "leader_epoch", epoch)
            audit = self.env.audit
            if audit is not None:
                audit.record(
                    "ha_failover", FRONTEND,
                    inputs={"candidates": [r.rid for r in candidates],
                            "old_leader": old.rid,
                            "old_leader_down": old.down,
                            "leader_lost_at_s": round(lost_at, 6)},
                    action={"leader": winner.rid, "epoch": epoch,
                            "failover_s": round(failover_s, 6)},
                    alternatives=[{"leader": r.rid,
                                   "rejected": "higher replica id"}
                                  for r in candidates if r is not winner],
                    reason="controller lease expired; lowest-id reachable"
                           " replica elected under a fresh epoch")
            self._notify_change()

    def controller_crash(self, rid: int) -> Optional[ControllerReplica]:
        replica = self.controllers.replicas[rid]
        if replica.down:
            return None
        self.controllers.crash(rid, self.env.now)
        self.env.trace.instant("ha_controller_crash", FRONTEND, replica=rid)
        return replica

    def controller_rejoin(self, rid: int) -> None:
        self.controllers.rejoin(rid)
        self.env.trace.instant("ha_controller_rejoin", FRONTEND, replica=rid)
        self._notify_change()

    def _authorize(self, endpoint: str, what: str) -> bool:
        """Epoch-fenced authorization of one control-plane decision.

        The consumer at ``endpoint`` asks every replica it can currently
        exchange messages with which claims leadership. Decisions are
        stamped with the deciding replica's *believed* epoch; the
        consumer accepts only the highest epoch it has ever seen, so a
        partitioned stale leader (old epoch) is fenced, and a consumer
        that can reach no believed leader at all freezes rather than act
        on stale authority.
        """
        believed = [r for r in self.controllers.replicas
                    if not r.down and r.believes_leader
                    and self.links.reachable(r.endpoint, endpoint)]
        seen = self._seen_epochs.get(endpoint, 0)
        if not believed:
            self.metrics.ha_frozen_decisions += 1
            self.env.trace.instant("ha_frozen", FRONTEND,
                                   consumer=endpoint, what=what)
            return False
        best = max(r.believed_epoch for r in believed)
        fence_at = max(best, seen)
        for replica in believed:
            if replica.believed_epoch < fence_at:
                self.metrics.ha_fenced_decisions += 1
                self.env.trace.instant(
                    "ha_fenced", FRONTEND, consumer=endpoint, what=what,
                    stale_epoch=replica.believed_epoch, epoch=fence_at)
        if best < seen:
            return False
        self._seen_epochs[endpoint] = best
        return True

    def authorize_resize(self, node: "NodeSystem") -> bool:
        """May this node apply a pool-resize decision right now?"""
        return self._authorize(node.track, "resize")

    def authorize_split(self, workflow_name: str) -> bool:
        """May the frontend recompute a workflow's MILP split right now?"""
        return self._authorize(FRONTEND, f"split:{workflow_name}")

    # ------------------------------------------------------------------
    # Membership-aware dispatch and recovery
    # ------------------------------------------------------------------
    @profiled("ha")
    def node_suspected(self, node: Optional["NodeSystem"]) -> bool:
        if node is None:
            return False
        return self.membership.state(node.track) != ALIVE

    @profiled("ha")
    def dispatchable(self, node: "NodeSystem") -> bool:
        """Should the frontend route new work to this node?"""
        return (self.membership.state(node.track) == ALIVE
                and self.links.delivers(FRONTEND, node.track))

    @profiled("ha")
    def result_visible(self, job: "Job") -> bool:
        """Can the frontend observe this job's completion right now?"""
        node = getattr(job, "ha_node", None)
        if node is None:
            return True
        return self.links.delivers(node.track, FRONTEND)

    def register_dispatch(self, key: Optional[IdempotencyKey]) -> None:
        if key is not None:
            self.journal.register(key, self.env.now)

    def redispatch_target(self, key: Optional[IdempotencyKey],
                          jobs: List["Job"],
                          exclude: Optional["NodeSystem"]):
        """A node to re-dispatch a stranded invocation to, or None.

        Authorised only when the journal still allows this key exactly
        once, at least one live copy sits on a suspected node, and a
        non-suspected target exists.
        """
        if not self.config.redispatch or key is None:
            return None
        if not self.journal.may_redispatch(key):
            return None
        live = [j for j in jobs if not j.aborted]
        if not live:
            return None
        if not any(self.node_suspected(getattr(j, "ha_node", None))
                   for j in live):
            return None
        target = self.cluster.pick_node(exclude=exclude)
        if target is None or self.node_suspected(target):
            return None
        self.journal.record_redispatch(key, self.env.now)
        self.metrics.ha_redispatches += 1
        self.env.trace.instant("ha_redispatch", FRONTEND, key=str(key),
                               to=target.track)
        audit = self.env.audit
        if audit is not None:
            stranded = sorted({
                node.track for node in
                (getattr(j, "ha_node", None) for j in live)
                if node is not None and self.node_suspected(node)})
            audit.record(
                "ha_redispatch", FRONTEND,
                inputs={"key": str(key), "live_copies": len(live),
                        "stranded_on": stranded},
                action={"to": target.track},
                alternatives=[{"to": None,
                               "rejected": "every live copy sits on a"
                                           " suspected node"}],
                reason="journal authorised one duplicate of the stranded"
                       " invocation on a non-suspected node",
                workflow_uid=key[0])
        return target

    def record_completion(self, key: Optional[IdempotencyKey],
                          jobs: List["Job"], winner: "Job") -> None:
        """Account the winning completion; fence surviving duplicates."""
        if key is None:
            return
        first = self.journal.record_completion(key, self.env.now)
        if not first:
            self.metrics.ha_duplicate_completions += 1
        if not self.journal.was_redispatched(key):
            return
        for job in jobs:
            if job is winner or job.aborted:
                continue
            # The shepherd abandons this copy; its late completion is a
            # fenced duplicate, not a second workflow completion.
            node = getattr(job, "ha_node", None)
            self.metrics.ha_duplicates_fenced += 1
            self.env.trace.instant(
                "ha_fence_duplicate", FRONTEND, key=str(key),
                node=node.track if node is not None else None)
