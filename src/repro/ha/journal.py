"""The idempotency-keyed re-dispatch journal.

Every SLO-bearing function invocation carries an idempotency key —
``(workflow uid, stage index, position in stage)`` — registered here at
first dispatch. When the frontend suspects the node an invocation is
stranded on, the journal authorises **exactly one** re-dispatch of that
key; later suspicions of the same key find the entry already spent. The
journal also records completions, so a false suspicion whose original
invocation finishes after the re-dispatched copy is detected as a fenced
duplicate rather than a second workflow completion.

Pure bookkeeping — the runtime supplies all timestamps — so the journal
contents are bit-repeatable across same-seed runs and the determinism
suite can diff :func:`snapshot` outputs directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: (workflow uid, stage index, position of the function in its stage).
IdempotencyKey = Tuple[int, int, int]


@dataclass
class JournalEntry:
    key: IdempotencyKey
    registered_s: float
    redispatched_s: Optional[float] = None
    completed_s: Optional[float] = None
    completions: int = 0


@dataclass
class RedispatchJournal:
    _entries: Dict[IdempotencyKey, JournalEntry] = field(default_factory=dict)
    #: Completions recorded for an already-completed key (must stay 0:
    #: the invoke loop fences duplicates before they get this far).
    duplicate_completions: int = 0

    def register(self, key: IdempotencyKey, now: float) -> None:
        """Idempotent: only the first dispatch of a key creates an entry."""
        if key not in self._entries:
            self._entries[key] = JournalEntry(key=key, registered_s=now)

    def entry(self, key: IdempotencyKey) -> Optional[JournalEntry]:
        return self._entries.get(key)

    def may_redispatch(self, key: IdempotencyKey) -> bool:
        entry = self._entries.get(key)
        return (entry is not None and entry.redispatched_s is None
                and entry.completed_s is None)

    def record_redispatch(self, key: IdempotencyKey, now: float) -> None:
        entry = self._entries[key]
        if entry.redispatched_s is not None:
            raise ValueError(f"second redispatch of key {key}")
        entry.redispatched_s = now

    def was_redispatched(self, key: IdempotencyKey) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry.redispatched_s is not None

    def record_completion(self, key: IdempotencyKey, now: float) -> bool:
        """Record a completion; False means the key already completed."""
        entry = self._entries[key]
        entry.completions += 1
        if entry.completed_s is not None:
            self.duplicate_completions += 1
            return False
        entry.completed_s = now
        return True

    def redispatch_count(self) -> int:
        return sum(1 for e in self._entries.values()
                   if e.redispatched_s is not None)

    def snapshot(self) -> Tuple[Tuple[IdempotencyKey, float,
                                      Optional[float], Optional[float],
                                      int], ...]:
        """Deterministic journal digest for cross-run comparison."""
        rows: List[Tuple[IdempotencyKey, float, Optional[float],
                         Optional[float], int]] = []
        for key in sorted(self._entries):
            entry = self._entries[key]
            rows.append((key, entry.registered_s, entry.redispatched_s,
                         entry.completed_s, entry.completions))
        return tuple(rows)
