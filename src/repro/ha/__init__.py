"""repro.ha — failure detection, partition tolerance, controller failover.

The high-availability layer of the reproduced platform. Everything here
is opt-in: a :class:`Cluster` built without an :class:`HAConfig` runs the
pre-HA code paths byte-for-byte (the determinism suite pins this to the
stored seed fingerprints). With a config, the cluster installs:

* a :class:`LinkTable` as ``env.links`` — the directed network-partition
  model that ``repro.faults`` cuts and heals;
* an :class:`HARuntime` as ``env.ha`` — heartbeat-driven phi-accrual
  failure detection and membership, epoch-fenced controller leases with
  deterministic failover, and idempotency-keyed re-dispatch of stranded
  invocations.
"""

from repro.ha.config import HAConfig
from repro.ha.controller import ControllerGroup, ControllerReplica
from repro.ha.detector import (
    ALIVE,
    DEAD,
    SUSPECTED,
    MembershipTable,
    PhiAccrualDetector,
)
from repro.ha.journal import RedispatchJournal
from repro.ha.links import LinkTable
from repro.ha.runtime import FRONTEND, HARuntime

__all__ = [
    "ALIVE",
    "DEAD",
    "SUSPECTED",
    "ControllerGroup",
    "ControllerReplica",
    "FRONTEND",
    "HAConfig",
    "HARuntime",
    "LinkTable",
    "MembershipTable",
    "PhiAccrualDetector",
    "RedispatchJournal",
]
