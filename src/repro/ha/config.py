"""HA tunables: heartbeats, the phi detector, leases, re-dispatch.

An :class:`HAConfig` switches on the high-availability layer of
``repro.ha``. Like the guard layer it is fully opt-in — a
:class:`Cluster` built without one runs the exact pre-HA code paths —
and every HA decision is a pure function of simulation time and observed
state (no random draws), so HA-armed runs are exactly as deterministic
as plain ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _require_finite(name: str, value: float) -> None:
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite: {value}")


def _require_positive(name: str, value: float) -> None:
    _require_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be positive: {value}")


@dataclass(frozen=True)
class HAConfig:
    """The high-availability policy of one cluster.

    **Failure detection.** Every node controller sends the frontend a
    heartbeat each ``heartbeat_period_s``; each heartbeat travels over
    the simulated RPC layer with ``heartbeat_latency_s`` of flight time,
    scaled by the node's current RPC slowdown factor (so RPC-spike
    faults visibly jitter arrival times). The frontend feeds arrival
    intervals into a phi-accrual detector (Hayashibara et al.): the
    suspicion level ``phi = -log10 P(next heartbeat still arrives)``
    under a normal model of the trailing ``detector_window`` intervals,
    with the interval standard deviation floored at
    ``min_interval_std_s`` so perfectly regular simulated heartbeats do
    not make the detector hair-triggered. A node is *suspected* when
    ``phi > phi_threshold`` and declared *dead* after a further
    ``dead_after_s`` without a heartbeat; a fresh heartbeat revives
    either state.

    **Controller failover.** ``n_controllers`` global-controller
    replicas (``ctl0`` the initial leader) share an epoch-numbered
    lease of ``lease_s`` seconds, renewed at half-lease cadence while
    leader and frontend can exchange messages. When the lease expires,
    the election rule is deterministic: the lowest-id replica that is up
    and reachable from the frontend becomes leader with ``epoch + 1``.
    Pool-resize and MILP-split decisions carry the deciding replica's
    epoch; consumers remember the highest epoch they have seen and
    reject (fence) decisions from any lower epoch, so a partitioned
    stale leader can never mutate pool state.

    **Recovery.** With ``redispatch`` on, an in-flight invocation whose
    node becomes suspected is re-dispatched — exactly once per
    idempotency key, through a journal — to a non-suspected node;
    duplicate completions caused by false suspicion are fenced.
    """

    #: Node-controller heartbeat cadence, seconds.
    heartbeat_period_s: float = 0.25
    #: One-way heartbeat flight time (scaled by the node's RPC factor).
    heartbeat_latency_s: float = 0.005
    #: Suspicion threshold on the phi scale (8 ~ 1e-8 false-alarm odds).
    phi_threshold: float = 8.0
    #: Trailing heartbeat intervals kept per node.
    detector_window: int = 32
    #: Floor on the interval standard deviation, seconds.
    min_interval_std_s: float = 0.02
    #: Suspected -> dead after this long without a heartbeat, seconds.
    dead_after_s: float = 5.0
    #: Global-controller replicas (leader + standbys).
    n_controllers: int = 3
    #: Leader lease length, seconds (renewed at half-lease cadence).
    lease_s: float = 2.0
    #: How often standbys check the lease for expiry, seconds.
    election_period_s: float = 0.25
    #: Re-dispatch invocations stranded on suspected nodes.
    redispatch: bool = True

    def __post_init__(self) -> None:
        _require_positive("heartbeat_period_s", self.heartbeat_period_s)
        _require_finite("heartbeat_latency_s", self.heartbeat_latency_s)
        if self.heartbeat_latency_s < 0:
            raise ValueError(
                f"heartbeat_latency_s must be >= 0:"
                f" {self.heartbeat_latency_s}")
        _require_positive("phi_threshold", self.phi_threshold)
        if self.detector_window < 2:
            raise ValueError(
                f"detector_window must be >= 2: {self.detector_window}")
        _require_positive("min_interval_std_s", self.min_interval_std_s)
        _require_positive("dead_after_s", self.dead_after_s)
        if self.n_controllers < 1:
            raise ValueError(
                f"n_controllers must be >= 1: {self.n_controllers}")
        _require_positive("lease_s", self.lease_s)
        _require_positive("election_period_s", self.election_period_s)
        if self.lease_s <= self.election_period_s:
            raise ValueError(
                f"lease_s ({self.lease_s}) must exceed election_period_s"
                f" ({self.election_period_s}) or the lease can expire"
                f" between checks of the replica that holds it")
