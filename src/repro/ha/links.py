"""The directed link model: which simulated messages currently deliver.

Endpoints are the track names the rest of the platform already uses:
``"frontend"`` for the dispatcher/frontend, ``"node<i>"`` for node
controllers, and ``"ctl<i>"`` for global-controller replicas. A link is
an ordered (src, dst) pair; cutting only one direction models an
asymmetric partition (e.g. a node whose heartbeats are lost while it can
still receive dispatches).

Cuts are reference-counted so overlapping partition faults compose
exactly: each :func:`cut` must be matched by one :func:`heal`, and the
link delivers again only when every overlapping cut has healed — the
same discipline the fault injector uses for windowed slowdown factors.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple


class LinkTable:
    """Reference-counted directed link cuts between named endpoints."""

    def __init__(self) -> None:
        self._cuts: Dict[Tuple[str, str], int] = {}
        self._heal_callbacks: List[Callable[[str, str], None]] = []

    def delivers(self, src: str, dst: str) -> bool:
        """Does a message from ``src`` currently reach ``dst``?"""
        return self._cuts.get((src, dst), 0) == 0

    def reachable(self, a: str, b: str) -> bool:
        """Both directions deliver (request/response round trip works)."""
        return self.delivers(a, b) and self.delivers(b, a)

    def cut(self, src: str, dst: str) -> None:
        """Sever the directed link; stacks with overlapping cuts."""
        self._cuts[(src, dst)] = self._cuts.get((src, dst), 0) + 1

    def heal(self, src: str, dst: str) -> None:
        """Undo one :func:`cut`; delivery resumes when all cuts healed."""
        pair = (src, dst)
        count = self._cuts.get(pair, 0)
        if count <= 0:
            raise ValueError(f"heal of uncut link {src}->{dst}")
        if count == 1:
            del self._cuts[pair]
            for callback in self._heal_callbacks:
                callback(src, dst)
        else:
            self._cuts[pair] = count - 1

    def on_heal(self, callback: Callable[[str, str], None]) -> None:
        """Register a callback fired when a link fully heals."""
        self._heal_callbacks.append(callback)

    def cut_pairs(self) -> List[Tuple[str, str]]:
        """Currently severed (src, dst) pairs, sorted for determinism."""
        return sorted(self._cuts)
