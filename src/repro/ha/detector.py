"""Phi-accrual failure detection and the frontend's membership table.

The detector is the adaptive accrual detector of Hayashibara et al.
(2004), as deployed in Cassandra/Akka: rather than a binary
timeout, it emits a continuous suspicion level

    phi(t) = -log10 P(a heartbeat still arrives after t)

under a normal model of recent inter-arrival times. Small phi means the
silence is ordinary; phi growing past a threshold means the silence is
statistically inconsistent with the node being alive. Because the
simulation's heartbeats are metronome-regular, the interval standard
deviation is floored (``min_std_s``) — otherwise one delayed heartbeat
would read as an infinite-sigma event.

Everything here is pure bookkeeping over timestamps handed in by the
runtime; no clock or randomness is touched, which is what makes
suspicion timestamps bit-repeatable across runs.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Membership states.
ALIVE = "alive"
SUSPECTED = "suspected"
DEAD = "dead"

#: Cap on phi so the metric stays finite when the tail underflows.
_PHI_CAP = 300.0


class PhiAccrualDetector:
    """Per-member heartbeat history and the phi suspicion level."""

    def __init__(self, expected_interval_s: float, window: int = 32,
                 min_std_s: float = 0.02):
        if expected_interval_s <= 0:
            raise ValueError(
                f"expected_interval_s must be positive: {expected_interval_s}")
        self.expected_interval_s = expected_interval_s
        self.window = window
        self.min_std_s = min_std_s
        self._intervals: Dict[str, Deque[float]] = {}
        self._last: Dict[str, float] = {}

    def register(self, name: str, now: float) -> None:
        """Start tracking a member; silence is counted from ``now``."""
        self._last.setdefault(name, now)

    def heartbeat(self, name: str, now: float) -> None:
        """Record one heartbeat arrival."""
        last = self._last.get(name)
        if last is not None and now > last:
            window = self._intervals.setdefault(
                name, deque(maxlen=self.window))
            window.append(now - last)
        self._last[name] = now

    def last_arrival(self, name: str) -> Optional[float]:
        return self._last.get(name)

    def phi(self, name: str, now: float) -> float:
        """Suspicion level for ``name`` given silence up to ``now``."""
        last = self._last.get(name)
        if last is None:
            return 0.0
        window = self._intervals.get(name)
        if window:
            mean = sum(window) / len(window)
            variance = sum((x - mean) ** 2 for x in window) / len(window)
            std = math.sqrt(variance)
        else:
            mean = self.expected_interval_s
            std = self.min_std_s
        std = max(std, self.min_std_s)
        elapsed = now - last
        if elapsed <= mean:
            return 0.0
        # P(interval > elapsed) for a normal(mean, std) interval model.
        tail = 0.5 * math.erfc((elapsed - mean) / (std * math.sqrt(2.0)))
        if tail <= 0.0:
            return _PHI_CAP
        return min(-math.log10(tail), _PHI_CAP)


class MembershipTable:
    """The frontend's view of which node controllers are alive.

    State machine per member: ``alive -> suspected`` when phi crosses
    the threshold, ``suspected -> dead`` after ``dead_after_s`` more
    silence, and either non-alive state back to ``alive`` as soon as a
    fresh heartbeat pulls phi back under the threshold. Every transition
    is recorded with its timestamp — the determinism suite diffs these
    lists across same-seed runs.
    """

    def __init__(self, detector: PhiAccrualDetector, phi_threshold: float,
                 dead_after_s: float):
        self.detector = detector
        self.phi_threshold = phi_threshold
        self.dead_after_s = dead_after_s
        self._state: Dict[str, str] = {}
        self._suspected_at: Dict[str, float] = {}
        #: (time, member, new_state) transition log, in order.
        self.transitions: List[Tuple[float, str, str]] = []

    def state(self, name: str) -> str:
        return self._state.get(name, ALIVE)

    def suspected_at(self, name: str) -> Optional[float]:
        return self._suspected_at.get(name)

    def evaluate(self, name: str, now: float) -> Optional[str]:
        """Advance the member's state machine; returns a new state or None."""
        current = self.state(name)
        phi = self.detector.phi(name, now)
        if current == ALIVE:
            if phi > self.phi_threshold:
                self._suspected_at[name] = now
                return self._transition(name, SUSPECTED, now)
            return None
        if phi <= self.phi_threshold:
            self._suspected_at.pop(name, None)
            return self._transition(name, ALIVE, now)
        if (current == SUSPECTED
                and now - self._suspected_at[name] >= self.dead_after_s):
            return self._transition(name, DEAD, now)
        return None

    def _transition(self, name: str, state: str, now: float) -> str:
        self._state[name] = state
        self.transitions.append((now, name, state))
        return state

    def snapshot(self) -> Tuple[Tuple[float, str, str], ...]:
        """Immutable transition log for cross-run comparison."""
        return tuple(self.transitions)
