"""Lookup of the twelve evaluated benchmarks by name.

The evaluation (Section VII) runs 7 standalone FunctionBench functions and
5 multi-function applications. The platform layer treats every benchmark as
a workflow; standalone functions become single-stage workflows.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.applications import APPLICATIONS, Workflow
from repro.workloads.functionbench import STANDALONE_FUNCTIONS
from repro.workloads.model import FunctionModel

_FUNCTIONS: Dict[str, FunctionModel] = {
    f.name: f for f in STANDALONE_FUNCTIONS
}
for _app in APPLICATIONS.values():
    for _f in _app.functions:
        _FUNCTIONS[_f.name] = _f


def get_function(name: str) -> FunctionModel:
    """The model of any known function (standalone or app-internal)."""
    try:
        return _FUNCTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown function {name!r}; known: {sorted(_FUNCTIONS)}") from None


def get_application(name: str) -> Workflow:
    """One of the five multi-function applications."""
    try:
        return APPLICATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(APPLICATIONS)}"
        ) from None


def workflow_for(name: str) -> Workflow:
    """Any of the twelve benchmarks, as a workflow.

    Standalone functions are wrapped in single-stage workflows so callers
    can treat every benchmark uniformly.
    """
    if name in APPLICATIONS:
        return APPLICATIONS[name]
    for function in STANDALONE_FUNCTIONS:
        if function.name == name:
            return Workflow.single(function)
    raise KeyError(
        f"unknown benchmark {name!r}; known: {benchmark_names()}")


def benchmark_names() -> List[str]:
    """The twelve benchmark names in Table I order."""
    return ([f.name for f in STANDALONE_FUNCTIONS]
            + list(APPLICATIONS.keys()))


def all_benchmarks() -> List[Workflow]:
    """All twelve benchmarks as workflows, in Table I order."""
    return [workflow_for(name) for name in benchmark_names()]
