"""Randomised synthetic function/application populations.

The paper's characterization covers 100+ open-source functions; the twelve
calibrated benchmarks are its evaluation subset. This module generates
arbitrary-size populations with the same statistical character — run times
log-uniform between ~1 ms and seconds, idle fractions clustered around the
observed 40–80 %, compute fractions by workload class — for stress-testing
the controllers beyond the fixed suite.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.workloads.applications import Workflow, WorkflowStage
from repro.workloads.inputs import (
    image_space,
    json_space,
    tabular_space,
    text_space,
    video_space,
)
from repro.workloads.model import FunctionModel, InputModel

#: Workload classes with (compute-fraction range, idle-fraction range,
#: input space factory).
_CLASSES = (
    ("web", (0.40, 0.55), (0.70, 0.90), json_space),
    ("serving", (0.55, 0.70), (0.15, 0.45), image_space),
    ("media", (0.60, 0.75), (0.35, 0.55), video_space),
    ("analytics", (0.55, 0.70), (0.40, 0.60), tabular_space),
    ("training", (0.80, 0.90), (0.05, 0.20), text_space),
)


def synthesize_function(rng: np.random.Generator, index: int = 0,
                        input_sensitive: bool = True) -> FunctionModel:
    """One random function with realistic serverless characteristics."""
    class_name, cf_range, idle_range, space_factory = _CLASSES[
        rng.integers(len(_CLASSES))]
    # Run times log-uniform over three decades (1 ms .. 2 s).
    run_s = float(np.exp(rng.uniform(np.log(0.001), np.log(2.0))))
    idle = float(rng.uniform(*idle_range))
    block_s = run_s * idle / max(1e-9, (1.0 - idle))
    n_blocks = int(rng.integers(1, 4)) if block_s > 0 else 0
    input_model: Optional[InputModel] = None
    if input_sensitive:
        space = space_factory()
        relevant = space.relevant_names[0]
        median = {
            "file_kb": 24.0, "n_records": 120.0, "megapixels": 1.6,
            "duration_s": 28.0, "length_kb": 6.0, "n_rows_k": 40.0,
            "fps": 30.0,
        }.get(relevant, 1.0)
        exponent = float(rng.uniform(0.2, 1.0))
        input_model = InputModel(
            space,
            lambda f, r=relevant, m=median, e=exponent: (f[r] / m) ** e)
    return FunctionModel(
        name=f"synth.{class_name}{index:03d}",
        run_seconds_at_max=run_s,
        compute_fraction=float(rng.uniform(*cf_range)),
        block_seconds=block_s,
        n_blocks=n_blocks,
        cold_start_seconds=float(rng.uniform(0.2, 1.5)),
        input_model=input_model,
    )


def synthesize_population(n: int, rng: np.random.Generator,
                          input_sensitive: bool = True
                          ) -> List[FunctionModel]:
    """``n`` independent random functions with unique names."""
    if n < 1:
        raise ValueError(f"need at least one function, got {n}")
    return [synthesize_function(rng, index=i,
                                input_sensitive=input_sensitive)
            for i in range(n)]


def synthesize_workflow(rng: np.random.Generator, name: str = "synthApp",
                        min_functions: int = 2,
                        max_functions: int = 8) -> Workflow:
    """A random application: 2-8 functions in 1-2-wide stages."""
    if not 1 <= min_functions <= max_functions:
        raise ValueError(
            f"bad function-count range [{min_functions}, {max_functions}]")
    total = int(rng.integers(min_functions, max_functions + 1))
    stages = []
    placed = 0
    while placed < total:
        width = min(int(rng.integers(1, 3)), total - placed)
        members = tuple(
            synthesize_function(rng, index=placed + i)
            for i in range(width))
        members = tuple(
            FunctionModel(
                name=f"{name}.s{len(stages)}f{i}",
                run_seconds_at_max=m.run_seconds_at_max,
                compute_fraction=m.compute_fraction,
                block_seconds=m.block_seconds,
                n_blocks=m.n_blocks,
                cold_start_seconds=m.cold_start_seconds,
                input_model=m.input_model)
            for i, m in enumerate(members))
        stages.append(WorkflowStage(members))
        placed += width
    return Workflow(name, tuple(stages))
