"""The shape of a single function invocation.

An invocation alternates *run* segments (on-core work) with *block*
segments (waiting on RPCs to remote functions or storage). The paper's
characterization (Section III-3) shows functions commonly idle for ~70 % of
their invocation time, which is why context-switch-on-idle matters so much.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.hardware.work import WorkUnit


@dataclass
class RunSegment:
    """An on-core execution segment."""

    work: WorkUnit

    def duration(self, freq_ghz: float) -> float:
        return self.work.duration(freq_ghz)


@dataclass
class BlockSegment:
    """An off-core wait (RPC to a remote function or storage access)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"negative block duration {self.seconds}")


Segment = Union[RunSegment, BlockSegment]


@dataclass
class InvocationSpec:
    """One concrete invocation: its segments, inputs, and ground truth.

    ``features`` are the high-level input features (what the input-aware
    predictor sees); the ground-truth totals are what an oracle (the
    Baseline+PowerCtrl upper bound) predicts with 100 % accuracy.
    """

    function_name: str
    segments: List[Segment]
    features: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("an invocation needs at least one segment")
        if not isinstance(self.segments[0], RunSegment):
            raise ValueError("an invocation must start with a run segment")

    @property
    def run_segments(self) -> List[RunSegment]:
        return [s for s in self.segments if isinstance(s, RunSegment)]

    @property
    def block_segments(self) -> List[BlockSegment]:
        return [s for s in self.segments if isinstance(s, BlockSegment)]

    def total_run_seconds(self, freq_ghz: float) -> float:
        """Ground-truth total on-core time at ``freq_ghz`` (T_Run)."""
        return sum(s.duration(freq_ghz) for s in self.run_segments)

    @property
    def total_block_seconds(self) -> float:
        """Ground-truth total blocking time (T_Block)."""
        return sum(s.seconds for s in self.block_segments)

    def service_time(self, freq_ghz: float) -> float:
        """Unqueued end-to-end time at ``freq_ghz`` (T_Run + T_Block)."""
        return self.total_run_seconds(freq_ghz) + self.total_block_seconds

    def idle_fraction(self, freq_ghz: float) -> float:
        """Share of the (unqueued) invocation spent blocked."""
        service = self.service_time(freq_ghz)
        if service == 0:
            return 0.0
        return self.total_block_seconds / service

    def clone(self) -> "InvocationSpec":
        """An independent, pristine copy of this invocation.

        Work units are consumed in place during execution, so a retried or
        hedged invocation must run on its own copy — attempts never share
        segment state.
        """
        segments: List[Segment] = [
            RunSegment(s.work.copy()) if isinstance(s, RunSegment)
            else BlockSegment(s.seconds)
            for s in self.segments
        ]
        return InvocationSpec(self.function_name, segments,
                              dict(self.features))
