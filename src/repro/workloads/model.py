"""Per-function timing/energy models and invocation sampling.

A :class:`FunctionModel` captures what the paper's characterization
measures per function (Figs. 2–4): on-core time at the top frequency, its
frequency-scaled share, total blocking time and how it is chopped into
phases, cold-start duration, LLC/bandwidth sensitivity, and (optionally) an
:class:`InputModel` that makes execution time depend on the invocation's
input features through a simple polynomial — which is exactly the structure
the paper found after profiling 100+ open-source functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.hardware.work import WorkUnit
from repro.workloads.inputs import SyntheticInputSpace
from repro.workloads.spec import BlockSegment, InvocationSpec, RunSegment

#: Top frequency of the evaluation platform, GHz.
MAX_FREQ_GHZ = 3.0


@dataclass(frozen=True)
class InputModel:
    """How execution time depends on an invocation's input.

    ``multiplier`` maps a feature dict to a relative execution-time factor
    (≈1.0 for a median input). Only *relevant* features of ``space`` may
    influence it.
    """

    space: SyntheticInputSpace
    multiplier: Callable[[Dict[str, float]], float]

    def sample_features(self, rng: np.random.Generator,
                        dispersion: float = 1.0) -> Dict[str, float]:
        return self.space.sample(rng, dispersion)

    def time_multiplier(self, features: Dict[str, float]) -> float:
        value = float(self.multiplier(features))
        if value <= 0:
            raise ValueError(
                f"input multiplier must be positive, got {value}")
        return value


@dataclass(frozen=True)
class FunctionModel:
    """Analytic model of one serverless function."""

    name: str
    #: Total on-core time of a median warm invocation at 3.0 GHz (seconds).
    run_seconds_at_max: float
    #: Share of on-core time that scales with core frequency.
    compute_fraction: float
    #: Total off-core blocking time (RPC / storage), seconds.
    block_seconds: float
    #: How many block phases an invocation has (run segments = n_blocks+1).
    n_blocks: int
    #: Cold-start (container boot + runtime init) on-core work, seconds at
    #: the top frequency. Mostly compute (interpreter/library init).
    cold_start_seconds: float
    input_model: Optional[InputModel] = None
    #: Multiplicative run-time noise (lognormal cv) beyond input effects.
    run_noise_cv: float = 0.03
    #: Block times are much noisier (network/storage variance).
    block_noise_cv: float = 0.20
    llc_sensitivity: float = 0.1
    bw_sensitivity: float = 0.1
    max_freq_ghz: float = MAX_FREQ_GHZ

    def __post_init__(self) -> None:
        if self.run_seconds_at_max <= 0:
            raise ValueError(f"{self.name}: run time must be positive")
        if not 0.0 <= self.compute_fraction <= 1.0:
            raise ValueError(f"{self.name}: bad compute fraction")
        if self.block_seconds < 0 or self.cold_start_seconds < 0:
            raise ValueError(f"{self.name}: negative durations")
        if self.n_blocks < 0:
            raise ValueError(f"{self.name}: negative n_blocks")
        if self.block_seconds > 0 and self.n_blocks == 0:
            raise ValueError(
                f"{self.name}: blocking time requires at least one block phase")
        for attr in ("run_noise_cv", "block_noise_cv",
                     "llc_sensitivity", "bw_sensitivity"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{self.name}: negative {attr}")

    # ------------------------------------------------------------------
    # Expected (noise-free, median-input) characteristics
    # ------------------------------------------------------------------
    def run_seconds(self, freq_ghz: float) -> float:
        """Median on-core time at ``freq_ghz``."""
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be positive: {freq_ghz}")
        scaled = self.compute_fraction * self.max_freq_ghz / freq_ghz
        flat = 1.0 - self.compute_fraction
        return self.run_seconds_at_max * (scaled + flat)

    def service_seconds(self, freq_ghz: float) -> float:
        """Median unqueued warm latency at ``freq_ghz`` (T_Run + T_Block)."""
        return self.run_seconds(freq_ghz) + self.block_seconds

    def slo_seconds(self, multiple: float = 5.0) -> float:
        """SLO = ``multiple`` × warm latency at the top frequency (§VII)."""
        if multiple <= 0:
            raise ValueError(f"SLO multiple must be positive: {multiple}")
        return multiple * self.service_seconds(self.max_freq_ghz)

    @property
    def idle_fraction(self) -> float:
        """Median share of an unqueued invocation spent blocked."""
        return self.block_seconds / self.service_seconds(self.max_freq_ghz)

    # ------------------------------------------------------------------
    # Invocation sampling
    # ------------------------------------------------------------------
    def sample_invocation(self, rng: np.random.Generator,
                          dispersion: float = 1.0,
                          mem_time_multiplier: float = 1.0) -> InvocationSpec:
        """Draw one concrete invocation.

        ``dispersion`` widens/narrows the input-feature distributions
        (Fig. 22's variability knob); ``mem_time_multiplier`` inflates the
        memory component (the Fig. 3 throttling study).
        """
        if mem_time_multiplier < 1.0:
            raise ValueError(
                f"mem_time_multiplier must be >= 1: {mem_time_multiplier}")
        features: Dict[str, float] = {}
        input_mult = 1.0
        if self.input_model is not None:
            features = self.input_model.sample_features(rng, dispersion)
            input_mult = self.input_model.time_multiplier(features)
        run_total = (self.run_seconds_at_max * input_mult
                     * self._lognoise(rng, self.run_noise_cv))
        # I/O time grows with input size too, but sub-linearly (larger
        # payloads amortise per-request latency).
        block_total = (self.block_seconds * np.sqrt(input_mult)
                       * self._lognoise(rng, self.block_noise_cv))

        run_shares = self._shares(rng, self.n_blocks + 1)
        block_shares = self._shares(rng, self.n_blocks)
        segments = []
        for i, share in enumerate(run_shares):
            work = WorkUnit.from_profile(
                run_total * share, self.compute_fraction, self.max_freq_ghz)
            work.mem_seconds *= mem_time_multiplier
            segments.append(RunSegment(work))
            if i < self.n_blocks:
                segments.append(BlockSegment(block_total * block_shares[i]))
        return InvocationSpec(self.name, segments, features)

    def sample_cold_start_work(self, rng: np.random.Generator) -> WorkUnit:
        """On-core work of booting a container for this function."""
        seconds = self.cold_start_seconds * self._lognoise(rng, 0.1)
        return WorkUnit.from_profile(seconds, 0.85, self.max_freq_ghz)

    @staticmethod
    def _lognoise(rng: np.random.Generator, cv: float) -> float:
        """A lognormal factor with unit median and given dispersion."""
        if cv <= 0:
            return 1.0
        return float(np.exp(cv * rng.standard_normal()))

    @staticmethod
    def _shares(rng: np.random.Generator, n: int) -> np.ndarray:
        """n random positive shares summing to 1 (Dirichlet, mildly even)."""
        if n <= 0:
            return np.array([])
        if n == 1:
            return np.array([1.0])
        return rng.dirichlet(np.full(n, 4.0))
