"""Multi-function serverless applications as workflow DAGs (Table I).

A :class:`Workflow` is a sequence of stages; each stage holds one or more
functions that execute in parallel (the paper's "parallel children" case —
the stage's latency is the slowest member's). The five applications match
Table I's function counts:

* ``MLTune`` — hyper-parameter tuning, 6 functions (3 parallel trainers);
* ``DataAn`` — wage-data analytics, 8 functions (4 parallel partitions);
* ``eBank``  — account withdrawal, 6 short chained functions;
* ``eBook``  — hotel reservation, 7 functions (2 parallel lookups);
* ``VidAn``  — video analysis, 3 chained functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.workloads.inputs import (
    json_space,
    tabular_space,
    text_space,
    video_space,
)
from repro.workloads.model import FunctionModel, InputModel


@dataclass(frozen=True)
class WorkflowStage:
    """A group of functions that run in parallel within a workflow."""

    functions: Tuple[FunctionModel, ...]

    def __post_init__(self) -> None:
        if not self.functions:
            raise ValueError("a stage needs at least one function")

    def warm_latency(self, freq_ghz: float) -> float:
        """The stage finishes with its slowest member."""
        return max(f.service_seconds(freq_ghz) for f in self.functions)


@dataclass(frozen=True)
class Workflow:
    """An end-to-end application: sequential stages of parallel functions."""

    name: str
    stages: Tuple[WorkflowStage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a workflow needs at least one stage")
        names = [f.name for f in self.functions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate function names in {self.name}: {names}")

    @property
    def functions(self) -> List[FunctionModel]:
        """All functions, stage order then intra-stage order."""
        return [f for stage in self.stages for f in stage.functions]

    @property
    def n_functions(self) -> int:
        return len(self.functions)

    def function(self, name: str) -> FunctionModel:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"{self.name} has no function {name!r}")

    def stage_of(self, name: str) -> int:
        """Index of the stage containing function ``name``."""
        for i, stage in enumerate(self.stages):
            if any(f.name == name for f in stage.functions):
                return i
        raise KeyError(f"{self.name} has no function {name!r}")

    def warm_latency(self, freq_ghz: float) -> float:
        """Median unloaded end-to-end latency at a uniform frequency."""
        return sum(stage.warm_latency(freq_ghz) for stage in self.stages)

    def slo_seconds(self, multiple: float = 5.0) -> float:
        """SLO = multiple × warm latency at top frequency (Section VII)."""
        if multiple <= 0:
            raise ValueError(f"SLO multiple must be positive: {multiple}")
        return multiple * self.warm_latency(3.0)

    @classmethod
    def single(cls, function: FunctionModel) -> "Workflow":
        """Wrap a standalone function as a one-stage workflow."""
        return cls(function.name, (WorkflowStage((function,)),))


def _fn(name: str, run_ms: float, compute_fraction: float, block_ms: float,
        n_blocks: int, cold_ms: float,
        input_model: Optional[InputModel] = None) -> FunctionModel:
    """Terse constructor for application-internal functions."""
    return FunctionModel(
        name=name,
        run_seconds_at_max=run_ms / 1000.0,
        compute_fraction=compute_fraction,
        block_seconds=block_ms / 1000.0,
        n_blocks=n_blocks,
        cold_start_seconds=cold_ms / 1000.0,
        input_model=input_model)


def _scaled(space_factory, feature: str, median: float, exponent: float = 1.0):
    """An input model: multiplier = (feature / median) ** exponent."""
    return InputModel(
        space_factory(),
        lambda features: (features[feature] / median) ** exponent)


def _build_mltune() -> Workflow:
    """Hyper-parameter tuning (AWS Step Functions sample): prep, three
    parallel training configurations, evaluation, selection."""
    train = [
        _fn(f"MLTune.train{i}", 900.0, 0.85, 120.0, 2, 1200.0,
            _scaled(text_space, "length_kb", 6.0))
        for i in range(3)
    ]
    return Workflow("MLTune", (
        WorkflowStage((_fn("MLTune.prep", 40.0, 0.6, 60.0, 2, 400.0,
                           _scaled(text_space, "length_kb", 6.0, 0.5)),)),
        WorkflowStage(tuple(train)),
        WorkflowStage((_fn("MLTune.eval", 120.0, 0.7, 40.0, 1, 600.0),)),
        WorkflowStage((_fn("MLTune.select", 8.0, 0.5, 20.0, 1, 250.0),)),
    ))


def _build_dataan() -> Workflow:
    """Wage-data analysis (ServerlessBench): ingest, four parallel
    partition analyses, aggregate, format, store."""
    analyze = [
        _fn(f"DataAn.analyze{i}", 150.0, 0.65, 80.0, 2, 450.0,
            _scaled(tabular_space, "n_rows_k", 40.0))
        for i in range(4)
    ]
    return Workflow("DataAn", (
        WorkflowStage((_fn("DataAn.ingest", 30.0, 0.5, 90.0, 2, 350.0,
                           _scaled(tabular_space, "n_rows_k", 40.0, 0.5)),)),
        WorkflowStage(tuple(analyze)),
        WorkflowStage((_fn("DataAn.aggregate", 60.0, 0.6, 30.0, 1, 300.0),)),
        WorkflowStage((_fn("DataAn.format", 12.0, 0.55, 15.0, 1, 250.0),)),
        WorkflowStage((_fn("DataAn.store", 6.0, 0.4, 45.0, 1, 250.0),)),
    ))


def _build_ebank() -> Workflow:
    """Account withdrawal (AWS Samples): six short chained web functions."""
    return Workflow("eBank", (
        WorkflowStage((_fn("eBank.auth", 6.0, 0.5, 25.0, 2, 250.0,
                           _scaled(json_space, "file_kb", 24.0, 0.2)),)),
        WorkflowStage((_fn("eBank.validate", 4.0, 0.55, 15.0, 1, 220.0),)),
        WorkflowStage((_fn("eBank.balance", 5.0, 0.5, 30.0, 2, 220.0),)),
        WorkflowStage((_fn("eBank.withdraw", 7.0, 0.55, 35.0, 2, 250.0),)),
        WorkflowStage((_fn("eBank.notify", 3.0, 0.45, 20.0, 1, 200.0),)),
        WorkflowStage((_fn("eBank.log", 2.0, 0.4, 12.0, 1, 200.0),)),
    ))


def _build_ebook() -> Workflow:
    """Hotel reservation (vSwarm): search, two parallel lookups, book,
    pay, confirm, email."""
    return Workflow("eBook", (
        WorkflowStage((_fn("eBook.search", 12.0, 0.55, 40.0, 2, 300.0,
                           _scaled(json_space, "n_records", 120.0, 0.4)),)),
        WorkflowStage((
            _fn("eBook.availability", 8.0, 0.5, 30.0, 2, 250.0),
            _fn("eBook.rates", 6.0, 0.5, 25.0, 1, 250.0),
        )),
        WorkflowStage((_fn("eBook.book", 10.0, 0.55, 45.0, 2, 280.0),)),
        WorkflowStage((_fn("eBook.pay", 9.0, 0.6, 50.0, 2, 300.0),)),
        WorkflowStage((_fn("eBook.confirm", 4.0, 0.5, 15.0, 1, 220.0),)),
        WorkflowStage((_fn("eBook.email", 3.0, 0.45, 25.0, 1, 220.0),)),
    ))


def _build_vidan() -> Workflow:
    """Video analysis (vSwarm): decode, detect, summarize."""
    return Workflow("VidAn", (
        WorkflowStage((_fn("VidAn.decode", 220.0, 0.7, 120.0, 2, 600.0,
                           _scaled(video_space, "duration_s", 28.0)),)),
        WorkflowStage((_fn("VidAn.detect", 400.0, 0.75, 80.0, 1, 1300.0,
                           _scaled(video_space, "duration_s", 28.0)),)),
        WorkflowStage((_fn("VidAn.summarize", 30.0, 0.55, 40.0, 1, 300.0),)),
    ))


#: The five evaluated applications, keyed by Table I name.
APPLICATIONS: Dict[str, Workflow] = {
    workflow.name: workflow
    for workflow in (
        _build_mltune(),
        _build_dataan(),
        _build_ebank(),
        _build_ebook(),
        _build_vidan(),
    )
}
