"""Serverless workload models.

Analytic stand-ins for the paper's benchmarks (Table I):

* :mod:`~repro.workloads.spec` — the shape of one invocation: alternating
  on-core :class:`RunSegment`\\ s and I/O :class:`BlockSegment`\\ s.
* :mod:`~repro.workloads.inputs` — synthetic input datasets with the
  high-level features (file size, image resolution, video duration, ...)
  that drive input-dependent execution time.
* :mod:`~repro.workloads.model` — :class:`FunctionModel`: per-function
  timing/energy/frequency-sensitivity parameters and invocation sampling.
* :mod:`~repro.workloads.functionbench` — the seven standalone
  FunctionBench functions, calibrated to the paper's characterization.
* :mod:`~repro.workloads.applications` — the five multi-function
  applications as workflow DAGs.
* :mod:`~repro.workloads.registry` — name → model lookup for the twelve
  evaluated benchmarks.
"""

from repro.workloads.applications import (
    APPLICATIONS,
    Workflow,
    WorkflowStage,
)
from repro.workloads.functionbench import STANDALONE_FUNCTIONS
from repro.workloads.inputs import InputDataset, SyntheticInputSpace
from repro.workloads.model import FunctionModel, InputModel
from repro.workloads.registry import (
    all_benchmarks,
    get_application,
    get_function,
    workflow_for,
)
from repro.workloads.synthetic import (
    synthesize_function,
    synthesize_population,
    synthesize_workflow,
)
from repro.workloads.spec import BlockSegment, InvocationSpec, RunSegment

__all__ = [
    "APPLICATIONS",
    "BlockSegment",
    "FunctionModel",
    "InputDataset",
    "InputModel",
    "InvocationSpec",
    "RunSegment",
    "STANDALONE_FUNCTIONS",
    "SyntheticInputSpace",
    "Workflow",
    "WorkflowStage",
    "all_benchmarks",
    "get_application",
    "get_function",
    "synthesize_function",
    "synthesize_population",
    "synthesize_workflow",
    "workflow_for",
]
