"""The seven standalone FunctionBench functions (Table I), calibrated.

Calibration targets come from the paper's characterization:

* execution times span milliseconds (WebServ) to seconds (MLTrain)
  (Section III-3, "a millisecond to a few seconds");
* WebServ at 1.2 GHz loses only ~12 % response time (it is I/O-dominated),
  while CNNServ at 2.0 GHz loses ~23 % time and ~40 % energy (Fig. 2);
* storage-accessing functions idle ~70 % of their invocation (Section
  III-3);
* ML-serving and video functions are the most compute-bound, web/serving
  functions the least.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.inputs import (
    image_space,
    json_space,
    text_space,
    video_space,
)
from repro.workloads.model import FunctionModel, InputModel


def _webserv_mult(features: Dict[str, float]) -> float:
    # Response time is nearly input-independent (the paper's EWMA case).
    return (features["file_kb"] / 24.0) ** 0.15


def _imgproc_mult(features: Dict[str, float]) -> float:
    # Resize cost is linear in pixel count.
    return features["megapixels"] / 1.6


def _cnnserv_mult(features: Dict[str, float]) -> float:
    # Inputs are resized to the network's input tensor; only decode varies.
    return (features["megapixels"] / 1.6) ** 0.2


def _lrserv_mult(features: Dict[str, float]) -> float:
    return (features["length_kb"] / 6.0) ** 0.5


def _rnnserv_mult(features: Dict[str, float]) -> float:
    # Generation length scales with the requested output size.
    return features["length_kb"] / 6.0


def _vidproc_mult(features: Dict[str, float]) -> float:
    # Per-frame filter: frames = duration x fps.
    return (features["duration_s"] / 28.0) * (features["fps"] / 30.0) ** 0.3


def _mltrain_mult(features: Dict[str, float]) -> float:
    # Epoch cost is linear in the training-set size.
    return features["length_kb"] / 6.0


WEB_SERV = FunctionModel(
    name="WebServ",
    run_seconds_at_max=0.005, compute_fraction=0.50,
    block_seconds=0.030, n_blocks=2, cold_start_seconds=0.25,
    input_model=InputModel(json_space(), _webserv_mult),
    llc_sensitivity=0.05, bw_sensitivity=0.04)

IMG_PROC = FunctionModel(
    name="ImgProc",
    run_seconds_at_max=0.060, compute_fraction=0.55,
    block_seconds=0.090, n_blocks=2, cold_start_seconds=0.40,
    input_model=InputModel(image_space(), _imgproc_mult),
    llc_sensitivity=0.10, bw_sensitivity=0.12)

CNN_SERV = FunctionModel(
    name="CNNServ",
    run_seconds_at_max=0.200, compute_fraction=0.60,
    block_seconds=0.050, n_blocks=1, cold_start_seconds=1.50,
    input_model=InputModel(image_space(), _cnnserv_mult),
    llc_sensitivity=0.14, bw_sensitivity=0.10)

LR_SERV = FunctionModel(
    name="LRServ",
    run_seconds_at_max=0.015, compute_fraction=0.65,
    block_seconds=0.010, n_blocks=1, cold_start_seconds=0.60,
    input_model=InputModel(text_space(), _lrserv_mult),
    llc_sensitivity=0.06, bw_sensitivity=0.05)

RNN_SERV = FunctionModel(
    name="RNNServ",
    run_seconds_at_max=0.080, compute_fraction=0.60,
    block_seconds=0.120, n_blocks=2, cold_start_seconds=0.90,
    input_model=InputModel(text_space(), _rnnserv_mult),
    llc_sensitivity=0.08, bw_sensitivity=0.06)

VID_PROC = FunctionModel(
    name="VidProc",
    run_seconds_at_max=0.350, compute_fraction=0.70,
    block_seconds=0.250, n_blocks=3, cold_start_seconds=0.80,
    input_model=InputModel(video_space(), _vidproc_mult),
    llc_sensitivity=0.12, bw_sensitivity=0.14)

ML_TRAIN = FunctionModel(
    name="MLTrain",
    run_seconds_at_max=1.200, compute_fraction=0.85,
    block_seconds=0.150, n_blocks=2, cold_start_seconds=1.20,
    input_model=InputModel(text_space(), _mltrain_mult),
    llc_sensitivity=0.10, bw_sensitivity=0.12)

#: The seven standalone functions, in the paper's Table I order.
STANDALONE_FUNCTIONS: Tuple[FunctionModel, ...] = (
    WEB_SERV, IMG_PROC, CNN_SERV, LR_SERV, RNN_SERV, VID_PROC, ML_TRAIN,
)
