"""Synthetic input datasets with high-level features.

The paper invokes functions with inputs from open datasets (ImageNet,
THUMOS, IMDB reviews, DAVIS, word-collocation corpora) and extracts
high-level features — file size, image resolution, video duration — to
predict execution time (Section III-2). We generate synthetic inputs whose
feature distributions play the same role: a few *relevant* features drive
execution time through simple polynomial relations, while *irrelevant*
features (user ids, regions, flags) are present so the "train on all
features" regime of Fig. 4 is exercised faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class FeatureSpec:
    """Distribution of one input feature.

    ``kind`` selects the sampler:

    * ``lognormal`` — params ``(median, sigma)``; dispersion scales sigma.
    * ``uniform`` — params ``(lo, hi)``; dispersion scales the half-range
      around the centre.
    * ``choice`` — params are the discrete values; dispersion is ignored.

    ``relevant`` marks whether the feature actually influences execution
    time (the "selected features" of Fig. 4).
    """

    name: str
    kind: str
    params: Tuple[float, ...]
    relevant: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("lognormal", "uniform", "choice"):
            raise ValueError(f"unknown feature kind {self.kind!r}")
        if self.kind == "lognormal":
            median, sigma = self.params
            if median <= 0 or sigma < 0:
                raise ValueError(f"bad lognormal params {self.params}")
        elif self.kind == "uniform":
            lo, hi = self.params
            if hi < lo:
                raise ValueError(f"bad uniform params {self.params}")
        elif not self.params:
            raise ValueError("choice feature needs at least one value")

    def sample(self, rng: np.random.Generator, dispersion: float = 1.0) -> float:
        """Draw one value; ``dispersion`` widens/narrows the distribution."""
        if dispersion < 0:
            raise ValueError(f"negative dispersion {dispersion}")
        if self.kind == "lognormal":
            median, sigma = self.params
            return float(median * np.exp(sigma * dispersion * rng.standard_normal()))
        if self.kind == "uniform":
            lo, hi = self.params
            centre = (lo + hi) / 2.0
            half = (hi - lo) / 2.0 * min(dispersion, 1.0)
            return float(rng.uniform(centre - half, centre + half))
        return float(rng.choice(self.params))


@dataclass(frozen=True)
class SyntheticInputSpace:
    """A named collection of feature distributions."""

    name: str
    features: Tuple[FeatureSpec, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.features]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate feature names in {names}")

    @property
    def feature_names(self) -> List[str]:
        return [f.name for f in self.features]

    @property
    def relevant_names(self) -> List[str]:
        return [f.name for f in self.features if f.relevant]

    def sample(self, rng: np.random.Generator,
               dispersion: float = 1.0) -> Dict[str, float]:
        """Draw one input as a feature → value mapping."""
        return {f.name: f.sample(rng, dispersion) for f in self.features}


@dataclass
class InputDataset:
    """A materialised table of sampled inputs (rows of feature dicts)."""

    space: SyntheticInputSpace
    rows: List[Dict[str, float]]

    @classmethod
    def generate(cls, space: SyntheticInputSpace, n: int,
                 rng: np.random.Generator,
                 dispersion: float = 1.0) -> "InputDataset":
        if n < 1:
            raise ValueError(f"need at least one row, got {n}")
        return cls(space, [space.sample(rng, dispersion) for _ in range(n)])

    def __len__(self) -> int:
        return len(self.rows)

    def to_matrix(self, feature_names: Sequence[str]) -> np.ndarray:
        """Rows as a dense (n, len(feature_names)) array."""
        return np.array(
            [[row[name] for name in feature_names] for row in self.rows])


# ---------------------------------------------------------------------------
# Ready-made input spaces for the benchmark families. Irrelevant features
# deliberately pollute each space.
# ---------------------------------------------------------------------------
_COMMON_NOISE = (
    FeatureSpec("user_id", "choice", tuple(float(i) for i in range(1, 65))),
    FeatureSpec("region_code", "choice", (1.0, 2.0, 3.0, 4.0)),
    FeatureSpec("priority_flag", "choice", (0.0, 1.0)),
)


def json_space() -> SyntheticInputSpace:
    """JSON documents fetched from storage (WebServ-like)."""
    return SyntheticInputSpace("json", (
        FeatureSpec("file_kb", "lognormal", (24.0, 0.4), relevant=True),
        FeatureSpec("n_records", "lognormal", (120.0, 0.5), relevant=True),
    ) + _COMMON_NOISE)


def image_space() -> SyntheticInputSpace:
    """Images (ImgProc / CNNServ), ImageNet-like resolution spread."""
    return SyntheticInputSpace("image", (
        FeatureSpec("megapixels", "lognormal", (1.6, 0.55), relevant=True),
        FeatureSpec("channels", "choice", (1.0, 3.0)),
        FeatureSpec("jpeg_quality", "uniform", (60.0, 95.0)),
    ) + _COMMON_NOISE)


def video_space() -> SyntheticInputSpace:
    """Video clips (VidProc / VidAn), THUMOS/DAVIS-like durations."""
    return SyntheticInputSpace("video", (
        FeatureSpec("duration_s", "lognormal", (28.0, 0.7), relevant=True),
        FeatureSpec("fps", "choice", (24.0, 30.0, 60.0), relevant=True),
        FeatureSpec("height_px", "choice", (480.0, 720.0, 1080.0)),
    ) + _COMMON_NOISE)


def text_space() -> SyntheticInputSpace:
    """Text documents (RNNServ / LRServ / MLTrain), IMDB-like lengths."""
    return SyntheticInputSpace("text", (
        FeatureSpec("length_kb", "lognormal", (6.0, 0.5), relevant=True),
        FeatureSpec("vocab_k", "uniform", (4.0, 12.0)),
    ) + _COMMON_NOISE)


def tabular_space() -> SyntheticInputSpace:
    """Tabular analytics inputs (DataAn-like wage data)."""
    return SyntheticInputSpace("tabular", (
        FeatureSpec("n_rows_k", "lognormal", (40.0, 0.45), relevant=True),
        FeatureSpec("n_columns", "uniform", (8.0, 24.0)),
    ) + _COMMON_NOISE)
