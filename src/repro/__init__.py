"""EcoFaaS reproduction: SLO-driven energy management for serverless.

A from-scratch Python implementation of *EcoFaaS: Rethinking the Design of
Serverless Environments for Energy Efficiency* (ISCA 2024), including the
full simulated substrate it needs:

* :mod:`repro.sim` — a deterministic discrete-event kernel;
* :mod:`repro.hardware` — DVFS-capable servers with an analytic power
  model and energy metering;
* :mod:`repro.workloads` — the twelve evaluated benchmarks as calibrated
  analytic models;
* :mod:`repro.traces` — Azure-like bursty traces and Poisson load;
* :mod:`repro.platform` — the serverless platform (containers, cold
  starts, schedulers, workflow engine, metrics);
* :mod:`repro.core` — EcoFaaS itself (Workflow Controller, Delay-Power
  Table + MILP, dispatchers, elastic Core Pools, predictors);
* :mod:`repro.baselines` — MXFaaS ("Baseline") and a Gemini-style DVFS
  layer ("Baseline+PowerCtrl");
* :mod:`repro.experiments` — one harness per paper table/figure.

Quick start::

    from repro.core import EcoFaaSSystem
    from repro.platform.cluster import Cluster, ClusterConfig
    from repro.sim import Environment
    from repro.traces.poisson import PoissonLoadConfig, generate_poisson_trace

    env = Environment()
    cluster = Cluster(env, EcoFaaSSystem(), ClusterConfig(n_servers=5))
    trace = generate_poisson_trace(
        PoissonLoadConfig(["CNNServ"], rate_rps=50, duration_s=60))
    cluster.run_trace(trace)
    print(cluster.total_energy_j, cluster.metrics.latency_p99())
"""

__version__ = "1.0.0"
