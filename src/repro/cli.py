"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro fig15
    python -m repro fig13 --full --seed 7
    python -m repro all            # every experiment, quick mode
    python -m repro fig16 --trace out.json --epoch-metrics out.csv
    python -m repro fig16 --trace out.json --ledger ledger.json --burnrate
    python -m repro fig16 --audit audit.jsonl
    python -m repro report out.json --format json
    python -m repro explain out.json --audit audit.jsonl
    python -m repro bench --quick --compare BENCH_old.json
    python -m repro bench --history .
    python -m repro profile --scale 1,3,10 --quick
    python -m repro fig16 --trace out.json --fingerprints fp.json
    python -m repro diff fp_a.json fp_b.json
    python -m repro diff fp.json --run-a 0 --run-b 1
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import sys
import time
from typing import List, Optional

from repro.experiments import EXPERIMENTS


def _chart(key: str, result) -> None:
    """Terminal graphics for the figures where shape beats digits."""
    from repro import reports
    if key == "fig15":
        shares = {f"{row['freq_ghz']:.1f}GHz": float(row["share_pct"])
                  for row in result.rows}
        print(reports.bar_chart(shares, unit="%"))
    elif key == "fig14":
        for system in ("Baseline", "EcoFaaS"):
            samples = [(float(row["time_s"]), float(row["avg_freq_ghz"]))
                       for row in result.rows
                       if row["system"] == system and row["time_s"] >= 0]
            if samples:
                print(reports.timeline(samples, label=f"{system:8s}"))
    elif key in ("fig12", "fig13", "fig16", "fig17"):
        value_columns = [c for c in result.rows[0] if c.startswith("norm_")]
        key_column = next(iter(result.rows[0]))
        print(reports.comparison_table(result.rows, key_column,
                                       value_columns))
    print()


def _run_one(key: str, quick: bool, seed: int, chart: bool = False,
             ha: bool = False, tenancy: bool = False,
             power_cap: Optional[float] = None,
             cancel: bool = False) -> float:
    module = importlib.import_module(EXPERIMENTS[key])
    parameters = inspect.signature(module.run).parameters
    kwargs = {}
    if ha:
        if "ha" in parameters:
            kwargs["ha"] = True
        else:
            print(f"[{key} does not support --ha; running without it]",
                  file=sys.stderr)
    for flag, name, value in (("--tenancy", "tenancy", tenancy or None),
                              ("--power-cap", "power_cap", power_cap),
                              ("--cancel", "cancel", cancel or None)):
        if value is None:
            continue
        if name in parameters:
            kwargs[name] = value
        else:
            print(f"[{key} does not support {flag};"
                  f" running without it]", file=sys.stderr)
    start = time.perf_counter()
    result = module.run(quick=quick, seed=seed, **kwargs)
    elapsed = time.perf_counter() - start
    print(result.format_table())
    if chart:
        _chart(key, result)
    print(f"[{key} completed in {elapsed:.1f}s]")
    print()
    return elapsed


def _print_summary(outcomes: List[tuple]) -> None:
    """The per-experiment pass/fail summary table of ``repro all``."""
    width = max(len(key) for key, _, _ in outcomes)
    print("== summary ==")
    print(f"{'experiment'.ljust(width)}  result  detail")
    print(f"{'-' * width}  ------  ------")
    for key, passed, detail in outcomes:
        print(f"{key.ljust(width)}  {'PASS' if passed else 'FAIL':6s}"
              f"  {detail}")
    n_failed = sum(1 for _, passed, _ in outcomes if not passed)
    print(f"{len(outcomes) - n_failed}/{len(outcomes)} experiments passed")


def _report(argv: List[str]) -> int:
    """The ``repro report <trace.json>`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="ecofaas report",
        description="Analyze a recorded trace: top functions by energy,"
                    " queueing delay, and deadline misses.")
    parser.add_argument("trace", help="trace-event JSON file (--trace)")
    parser.add_argument("--top", type=int, default=10,
                        help="rows per ranking (default 10)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (default text)")
    args = parser.parse_args(argv)
    from repro import obs
    try:
        text = obs.report(args.trace, top_n=args.top, fmt=args.format)
    except OSError as error:
        print(f"cannot read trace file {args.trace}:"
              f" {error.strerror or error}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as error:
        print(f"not a trace-event JSON file: {args.trace} ({error})",
              file=sys.stderr)
        return 2
    print(text, end="")
    return 0


def _bench(argv: List[str]) -> int:
    """The ``repro bench`` subcommand: benchmark telemetry."""
    parser = argparse.ArgumentParser(
        prog="ecofaas bench",
        description="Run the pinned-seed benchmark panel and write"
                    " BENCH_<date>.json: wall-time, peak RSS, simulated"
                    " energy, p99 latency, and SLO-miss rate per"
                    " experiment.")
    parser.add_argument("--quick", action="store_true",
                        help="short panel (CI smoke): shorter traces,"
                             " fewer servers")
    parser.add_argument("--out", metavar="PATH",
                        help="output path (default BENCH_<date>.json)")
    parser.add_argument("--compare", metavar="OLD",
                        help="diff against a previous BENCH json and exit"
                             " 1 on regressions")
    parser.add_argument("--wall-tolerance", type=float, default=None,
                        metavar="REL",
                        help="relative wall-time slack for --compare"
                             " (e.g. 3.0 = allow 4x slower; default from"
                             " the bench module — CI machines vary, the"
                             " simulated metrics do not)")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip the kernel self-profiler section"
                             " (events/s, hotspots) in each entry")
    parser.add_argument("--fingerprints", action="store_true",
                        help="record progressive fingerprint chains per"
                             " experiment so --compare can point a"
                             " sim-metric drift at its first diverging"
                             " epoch and subsystem")
    parser.add_argument("--history", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="don't run the panel; print the wall-time /"
                             " energy trajectory across every"
                             " BENCH_*.json under DIR (default .)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format for --history (default text)")
    args = parser.parse_args(argv)
    from repro.obs import bench as bench_mod
    if args.history is not None:
        document = bench_mod.history(args.history)
        if args.format == "json":
            print(json.dumps(document, indent=1, sort_keys=True))
        else:
            print(bench_mod.format_history(document), end="")
        return 0 if document["files"] else 1
    document = bench_mod.run_bench(
        quick=args.quick,
        progress=lambda message: print(message, file=sys.stderr),
        profile=not args.no_profile,
        fingerprints=args.fingerprints)
    path = args.out or bench_mod.default_path(document)
    bench_mod.write_bench(document, path)
    print(f"[bench: {len(document['experiments'])} experiments -> {path}]")
    if args.compare:
        try:
            with open(args.compare) as handle:
                old = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"cannot read {args.compare}: {error}", file=sys.stderr)
            return 2
        if args.wall_tolerance is not None:
            findings = bench_mod.compare(
                old, document, wall_rel_tolerance=args.wall_tolerance)
        else:
            findings = bench_mod.compare(old, document)
        if findings:
            print(f"[bench: {len(findings)} regression finding(s)"
                  f" vs {args.compare}]")
            for finding in findings:
                print(f"  - {finding}")
            return 1
        print(f"[bench: no regressions vs {args.compare}]")
    return 0


def _profile(argv: List[str]) -> int:
    """The ``repro profile`` subcommand: kernel self-profiling."""
    parser = argparse.ArgumentParser(
        prog="ecofaas profile",
        description="Profile the reproduction itself: run a pinned"
                    " EcoFaaS scenario at a ladder of trace-duration"
                    " multipliers with the kernel self-profiler armed,"
                    " printing per-scale hotspot tables, the scaling"
                    " curve, and flamegraph-loadable collapsed stacks."
                    " The profiler reads only the host wall-clock, so"
                    " the simulated metrics match an unprofiled run"
                    " bit for bit.")
    parser.add_argument("--scale", default="1,3,10", metavar="K1,K2,...",
                        help="comma-separated trace-duration multipliers"
                             " (default 1,3,10)")
    parser.add_argument("--quick", action="store_true",
                        help="short base scenario (CI smoke): shorter"
                             " trace, fewer servers")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (default text)")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the full PROFILE document as"
                             " JSON to PATH")
    parser.add_argument("--collapsed", metavar="PREFIX",
                        help="collapsed-stack output path prefix; one"
                             " PREFIX.scale<K>.collapsed file per scale"
                             " (default PROFILE_<date>)")
    parser.add_argument("--cprofile", metavar="PATH",
                        help="additionally run everything under"
                             " cProfile and dump pstats data to PATH"
                             " (loadable with python -m pstats)")
    parser.add_argument("--min-conservation", type=float, default=0.9,
                        metavar="FRAC",
                        help="fail (exit 1) if attributed self-times sum"
                             " to less than FRAC of measured wall-time"
                             " at any scale (default 0.9)")
    args = parser.parse_args(argv)
    try:
        scales = tuple(float(part) for part in args.scale.split(","))
        if not scales or any(scale <= 0 for scale in scales):
            raise ValueError
    except ValueError:
        print(f"bad --scale {args.scale!r}; expected e.g. 1,3,10",
              file=sys.stderr)
        return 2
    from repro.obs import bench as bench_mod
    from repro.obs import prof as prof_mod

    def run() -> dict:
        return bench_mod.run_profile(
            scales=scales, quick=args.quick,
            progress=lambda message: print(message, file=sys.stderr))

    if args.cprofile:
        import cProfile
        profile = cProfile.Profile()
        document = profile.runcall(run)
        profile.dump_stats(args.cprofile)
        print(f"[cprofile: pstats data -> {args.cprofile}]",
              file=sys.stderr)
    else:
        document = run()

    collapsed_paths = []
    for entry in document["scales"]:
        if args.collapsed:
            path = f"{args.collapsed}.scale{entry['scale']:g}.collapsed"
        else:
            path = bench_mod.default_profile_collapsed_path(
                document, entry["scale"])
        with open(path, "w") as handle:
            handle.write(entry["collapsed"])
        collapsed_paths.append(path)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")

    if args.format == "json":
        print(json.dumps(document, indent=1, sort_keys=True))
    else:
        for entry in document["scales"]:
            print(prof_mod.format_hotspots(entry))
            print()
        print(prof_mod.format_scaling(document))
        print(f"[collapsed stacks: {', '.join(collapsed_paths)}]")
        if args.out:
            print(f"[profile document -> {args.out}]")

    broken = [entry for entry in document["scales"]
              if entry["wall_conservation"] < args.min_conservation]
    if broken:
        for entry in broken:
            print(f"[profile: wall conservation"
                  f" {100.0 * entry['wall_conservation']:.1f}% <"
                  f" {100.0 * args.min_conservation:.0f}% at scale"
                  f" {entry['scale']:g}x]", file=sys.stderr)
        return 1
    return 0


def _bill(argv: List[str]) -> int:
    """The ``repro bill`` subcommand: price a ledger's joules by tenant."""
    parser = argparse.ArgumentParser(
        prog="ecofaas bill",
        description="Price an energy ledger (JSON from --ledger) into a"
                    " per-tenant bill: joules priced per component"
                    " (run/cold_start/retry_waste/... at different $/MJ),"
                    " unattributed overhead spread pro-rata.")
    parser.add_argument("ledger", help="energy-ledger JSON file (--ledger)")
    parser.add_argument("--tenant", action="append", default=[],
                        metavar="NAME=BENCH1,BENCH2",
                        help="map benchmarks to a tenant (repeatable);"
                             " unmapped benchmarks bill as themselves")
    parser.add_argument("--run", type=int, default=None,
                        help="bill one run index (default: every run)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (default text)")
    args = parser.parse_args(argv)
    owners = {}
    for spec in args.tenant:
        name, _, benchmarks = spec.partition("=")
        if not name or not benchmarks:
            print(f"bad --tenant {spec!r}; expected NAME=BENCH1,BENCH2",
                  file=sys.stderr)
            return 2
        for benchmark in benchmarks.split(","):
            benchmark = benchmark.strip()
            if benchmark in owners and owners[benchmark] != name:
                print(f"benchmark {benchmark} mapped to both"
                      f" {owners[benchmark]} and {name}", file=sys.stderr)
                return 2
            owners[benchmark] = name
    try:
        with open(args.ledger) as handle:
            document = json.load(handle)
        runs = document["runs"]
    except OSError as error:
        print(f"cannot read ledger file {args.ledger}:"
              f" {error.strerror or error}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as error:
        print(f"not an energy-ledger JSON file: {args.ledger} ({error})",
              file=sys.stderr)
        return 2
    if args.run is not None:
        runs = [run for run in runs if run.get("run") == args.run]
        if not runs:
            print(f"no run {args.run} in {args.ledger}", file=sys.stderr)
            return 2
    from repro.tenancy import UNATTRIBUTED, bill_from_breakdown, format_bill

    def tenant_of(benchmark: str) -> str:
        return owners.get(benchmark, benchmark)

    bills = []
    for run in runs:
        breakdown = run.get("by_benchmark_component")
        if breakdown is None:
            # Older ledger file: fall back to the flat benchmark rollup,
            # billed entirely at the default component rate.
            breakdown = {bench: {"run": joules} for bench, joules
                         in run.get("by_benchmark", {}).items()}
            breakdown[UNATTRIBUTED] = {
                "static": run.get("ledger_j", 0.0)
                - sum(j for row in breakdown.values()
                      for j in row.values())}
        bill = bill_from_breakdown(breakdown, tenant_of)
        bills.append({"run": run.get("run"), "label": run.get("label"),
                      "bill": bill})
    if args.format == "json":
        print(json.dumps({"source": "repro.cli bill", "runs": bills},
                         indent=1, sort_keys=True))
        return 0
    for entry in bills:
        print(f"-- run {entry['run']} ({entry['label']}) --")
        print(format_bill(entry["bill"]), end="")
        print()
    return 0


def _explain(argv: List[str]) -> int:
    """The ``repro explain`` subcommand: why did a workflow miss?"""
    parser = argparse.ArgumentParser(
        prog="ecofaas explain",
        description="Walk a recorded trace (and optional decision audit"
                    " log) and print ranked causes for one missed-SLO"
                    " workflow.")
    parser.add_argument("trace", help="trace-event JSON file (--trace)")
    parser.add_argument("workflow", nargs="?", type=int,
                        help="workflow uid; omitted = the worst-missed"
                             " SLO workflow in the trace")
    parser.add_argument("--run", type=int, default=None,
                        help="restrict to one run index in the trace")
    parser.add_argument("--audit", metavar="PATH",
                        help="decision audit log (JSONL from --audit)")
    parser.add_argument("--top", type=int, default=10,
                        help="causes to print (default 10)")
    args = parser.parse_args(argv)
    from repro.obs.explain import (
        explain,
        format_explanation,
        load_explain_data,
        missed_workflows,
    )
    try:
        data = load_explain_data(args.trace, audit_path=args.audit)
    except OSError as error:
        print(f"cannot read file"
              f" {error.filename or args.trace}:"
              f" {error.strerror or error}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as error:
        print(f"not a trace-event JSON file: {args.trace} ({error})",
              file=sys.stderr)
        return 2
    uid, run = args.workflow, args.run
    if uid is None:
        missed = missed_workflows(data, run=run)
        if not missed:
            print("no missed-SLO workflow in this trace;"
                  " nothing to explain")
            return 1
        uid, run = missed[0].uid, missed[0].run
    try:
        result = explain(data, uid, run=run)
    except KeyError as error:
        print(f"workflow not found in trace: {error}", file=sys.stderr)
        return 2
    result["causes"] = result["causes"][:args.top]
    print(format_explanation(result))
    return 0


def _diff(argv: List[str]) -> int:
    """The ``repro diff`` subcommand: first-divergence attribution."""
    parser = argparse.ArgumentParser(
        prog="ecofaas diff",
        description="Compare two fingerprinted runs (--fingerprints"
                    " artifacts): bisect the per-epoch chain digests to"
                    " the first diverging epoch and subsystem, name the"
                    " first diverging audit decision inside it, and"
                    " attribute the downstream energy / EWT / SLO"
                    " deltas. Exit 0 when identical, 1 when diverged.")
    parser.add_argument("a", help="fingerprints JSON file (A side)")
    parser.add_argument("b", nargs="?", default=None,
                        help="fingerprints JSON file (B side); omitted ="
                             " diff two runs inside A (e.g. the arms of"
                             " an A/B experiment)")
    parser.add_argument("--run-a", type=int, default=None, metavar="I",
                        help="run index on the A side (default: align"
                             " runs pairwise)")
    parser.add_argument("--run-b", type=int, default=None, metavar="J",
                        help="run index on the B side (default: --run-a)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the structured report to PATH"
                             " ('-' prints JSON instead of text)")
    args = parser.parse_args(argv)
    from repro.obs import diff as diff_mod
    try:
        result = diff_mod.diff_documents(args.a, args.b,
                                         run_a=args.run_a,
                                         run_b=args.run_b)
    except OSError as error:
        print(f"cannot read fingerprints file"
              f" {error.filename or args.a}:"
              f" {error.strerror or error}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as error:
        print(f"not a fingerprints document: {error}", file=sys.stderr)
        return 2
    if args.json == "-":
        print(json.dumps(result, indent=1, sort_keys=True))
    else:
        print(diff_mod.format_diff(result), end="")
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(result, handle, indent=1, sort_keys=True)
                handle.write("\n")
            print(f"[diff report -> {args.json}]")
    return 0 if result["identical"] else 1


def _fuzz(argv: List[str]) -> int:
    """The ``repro fuzz`` subcommand: seeded chaos fuzzing + shrinking."""
    from repro.verify import fuzz as fuzz_mod
    from repro.verify.mutate import MUTATIONS
    parser = argparse.ArgumentParser(
        prog="ecofaas fuzz",
        description="Search random fault schedules (with overload bursts"
                    " and guard/ha/tenancy config draws) for cross-layer"
                    " invariant violations; any hit is delta-debugged to"
                    " a minimal fault plan and saved as a self-contained"
                    " JSON artifact that --replay re-executes"
                    " byte-deterministically.")
    parser.add_argument("--trials", type=int, default=25,
                        help="seeded trials to run (default 25)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign root seed (default 0)")
    parser.add_argument("--replay", metavar="ARTIFACT",
                        help="re-execute a saved fuzz artifact and verify"
                             " the outcome matches byte-for-byte")
    parser.add_argument("--artifact-dir", default="fuzz-artifacts",
                        metavar="DIR",
                        help="where shrunk repro artifacts are written"
                             " (default fuzz-artifacts/)")
    parser.add_argument("--max-shrink", type=int, default=64,
                        metavar="N",
                        help="shrink-phase trial budget per violation"
                             " (default 64)")
    # Hidden test hook: plant a known bug so the test suite can prove
    # the fuzzer finds and shrinks real violations.
    parser.add_argument("--mutate", choices=sorted(MUTATIONS),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.replay:
        outcome = fuzz_mod.replay(args.replay)
        names = sorted({v["invariant"] for v in outcome["violations"]})
        print(f"[replay: {args.replay} ->"
              f" {', '.join(names) if names else 'no violation'};"
              f" byte-identical: {'yes' if outcome['match'] else 'NO'}]")
        if not outcome["match"]:
            print(f"  stored:   {outcome['stored']}", file=sys.stderr)
            print(f"  replayed: {outcome['replayed']}", file=sys.stderr)
        return 0 if outcome["match"] else 1
    if args.trials < 1:
        parser.error("--trials must be >= 1")
    summary = fuzz_mod.campaign(
        args.trials, args.seed, mutate=args.mutate,
        artifact_dir=args.artifact_dir, max_shrink=args.max_shrink)
    hits = summary["violating_trials"]
    print(f"[fuzz: {args.trials} trials, seed {args.seed}:"
          f" {len(hits)} violating trial(s)"
          f"{' ' + str(hits) if hits else ''}]")
    return 1 if hits else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "fuzz":
        return _fuzz(argv[1:])
    if argv and argv[0] == "report":
        return _report(argv[1:])
    if argv and argv[0] == "bench":
        return _bench(argv[1:])
    if argv and argv[0] == "explain":
        return _explain(argv[1:])
    if argv and argv[0] == "bill":
        return _bill(argv[1:])
    if argv and argv[0] == "profile":
        return _profile(argv[1:])
    if argv and argv[0] == "diff":
        return _diff(argv[1:])
    parser = argparse.ArgumentParser(
        prog="ecofaas",
        description="EcoFaaS reproduction: regenerate the paper's tables"
                    " and figures as text tables.")
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'list', 'all', 'report',"
             " 'explain', 'bill', 'bench', 'profile', or 'diff'")
    parser.add_argument(
        "--full", action="store_true",
        help="run at closer-to-paper scale (much slower)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    parser.add_argument("--chart", action="store_true",
                        help="also render ASCII charts where applicable")
    parser.add_argument(
        "--ha", action="store_true",
        help="arm the repro.ha high-availability layer in experiments"
             " that support it (partition, chaos)")
    parser.add_argument(
        "--tenancy", action="store_true",
        help="arm the repro.tenancy energy-multi-tenancy layer (tenant"
             " budgets + billing) in experiments that support it")
    parser.add_argument(
        "--power-cap", type=float, default=None, metavar="WATTS",
        help="arm the cluster power-cap governor at WATTS in experiments"
             " that support it (implies tenant metering)")
    parser.add_argument(
        "--cancel", action="store_true",
        help="arm the repro.cancel cancellation + retry-budget layer in"
             " experiments that support it (chaos)")
    parser.add_argument(
        "--trace", metavar="PATH",
        help="record an invocation-lifecycle trace to PATH"
             " (Chrome trace-event JSON, loadable in Perfetto)")
    parser.add_argument(
        "--epoch-metrics", metavar="PATH",
        help="also export a per-epoch metrics time series"
             " (CSV, or JSON for .json paths; requires --trace)")
    parser.add_argument(
        "--epoch-s", type=float, default=2.0,
        help="epoch length for --epoch-metrics in simulated seconds"
             " (default 2.0, the EcoFaaS T_refresh)")
    parser.add_argument(
        "--ledger", metavar="PATH",
        help="attribute every joule of cluster energy to run / block /"
             " cold-start / idle / freq-switch / retry-waste / shed and"
             " write the validated ledger to PATH (requires --trace)")
    parser.add_argument(
        "--audit", metavar="PATH",
        help="record every control-plane decision (MILP split, pool"
             " retune, shed, brownout, breaker trip, failover,"
             " redispatch) as JSONL to PATH")
    parser.add_argument(
        "--fingerprints", metavar="PATH",
        help="write progressive per-epoch chain digests and a run"
             " manifest to PATH for `repro diff` (requires --trace;"
             " epoch length follows --epoch-s)")
    parser.add_argument(
        "--burnrate", action="store_true",
        help="arm per-benchmark SLO burn-rate monitors: latency"
             " histograms plus fast/slow burn alert instants in the"
             " trace (requires --trace)")
    parser.add_argument(
        "--verify", action="store_true",
        help="arm the repro.verify invariant monitors (clock, energy"
             " conservation, exactly-once lifecycle, breaker legality,"
             " HA fencing, tenant budgets); any violation fails the run"
             " with a non-zero exit code")
    args = parser.parse_args(argv)
    if args.epoch_metrics and not args.trace:
        parser.error("--epoch-metrics requires --trace")
    if args.ledger and not args.trace:
        parser.error("--ledger requires --trace")
    if args.burnrate and not args.trace:
        parser.error("--burnrate requires --trace")
    if args.fingerprints and not args.trace:
        parser.error("--fingerprints requires --trace")

    if args.experiment == "list":
        print("available experiments:")
        for key, module_name in EXPERIMENTS.items():
            print(f"  {key:10s} {module_name}")
        return 0

    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r};"
              f" try 'list'", file=sys.stderr)
        return 2

    tracer = None
    audit = None
    if args.trace:
        from repro import obs
        tracer = obs.install(obs.Tracer(
            ledger=obs.EnergyLedger() if args.ledger else None,
            burnrate=obs.BurnRateMonitor() if args.burnrate else None,
            fingerprint=(obs.FingerprintRecorder(epoch_s=args.epoch_s)
                         if args.fingerprints else None)))
    if args.audit:
        from repro import obs
        audit = obs.install_audit(obs.AuditLog())
    verifier = None
    if args.verify:
        from repro import verify
        verifier = verify.install(verify.Verifier())

    def _new_violations(since: int) -> str:
        """Summarize verifier violations recorded past index ``since``."""
        fresh = verifier.violations[since:]
        if not fresh:
            return ""
        counts: dict = {}
        for violation in fresh:
            counts[violation.invariant] = counts.get(violation.invariant,
                                                     0) + 1
        return ", ".join(f"{name} x{count}"
                         for name, count in sorted(counts.items()))

    try:
        if args.experiment == "all":
            # One failing experiment must not abort the whole sweep: run
            # every one, print the pass/fail summary table at the end,
            # exit non-zero if any failed (including any armed invariant
            # monitor reporting a violation).
            outcomes: List[tuple] = []
            for key in EXPERIMENTS:
                seen = len(verifier.violations) if verifier else 0
                try:
                    elapsed = _run_one(key, quick=not args.full,
                                       seed=args.seed, chart=args.chart,
                                       ha=args.ha, tenancy=args.tenancy,
                                       power_cap=args.power_cap,
                                       cancel=args.cancel)
                    violated = _new_violations(seen) if verifier else ""
                    if violated:
                        outcomes.append(
                            (key, False, f"invariants: {violated}"))
                        print(f"[{key} FAILED invariants: {violated}]",
                              file=sys.stderr)
                        print()
                    else:
                        outcomes.append((key, True, f"{elapsed:.1f}s"))
                except Exception as error:  # noqa: BLE001 - sweep must go on
                    outcomes.append(
                        (key, False, f"{type(error).__name__}: {error}"))
                    print(f"[{key} FAILED: {type(error).__name__}: {error}]",
                          file=sys.stderr)
                    print()
            _print_summary(outcomes)
            status = 0 if all(passed for _, passed, _ in outcomes) else 1
        else:
            try:
                _run_one(args.experiment, quick=not args.full,
                         seed=args.seed, chart=args.chart, ha=args.ha,
                         tenancy=args.tenancy, power_cap=args.power_cap,
                         cancel=args.cancel)
                status = 0
                if verifier is not None and verifier.violations:
                    print(f"[{args.experiment} FAILED invariants:"
                          f" {_new_violations(0)}]", file=sys.stderr)
                    for violation in verifier.violations:
                        print(f"  - [{violation.run}]"
                              f" {violation.invariant}"
                              f" @{violation.time_s:.3f}s:"
                              f" {violation.message}", file=sys.stderr)
                    status = 1
            except Exception as error:  # noqa: BLE001 - exit code, not trace
                print(f"[{args.experiment} FAILED:"
                      f" {type(error).__name__}: {error}]", file=sys.stderr)
                status = 1
    finally:
        if tracer is not None:
            obs.uninstall()
        if audit is not None:
            obs.uninstall_audit()
        if verifier is not None:
            verify.uninstall()

    if verifier is not None:
        total = len(verifier.violations)
        print(f"[verify: {verifier.runs} run(s) monitored,"
              f" {total} violation(s)"
              f"{': ' + _new_violations(0) if total else ''}]")

    if tracer is not None:
        n_events = obs.write_chrome_trace(tracer, args.trace)
        print(f"[trace: {n_events} events -> {args.trace};"
              f" open at https://ui.perfetto.dev]")
        if args.epoch_metrics:
            rows = obs.write_epoch_metrics(tracer, args.epoch_metrics,
                                           epoch_s=args.epoch_s)
            print(f"[epoch metrics: {len(rows)} rows"
                  f" -> {args.epoch_metrics}]")
        if args.ledger:
            document = tracer.ledger.write(args.ledger)
            conserved = all(run["conserved"] for run in document["runs"])
            print(f"[ledger: {len(document['runs'])} runs"
                  f" -> {args.ledger}; conservation"
                  f" {'OK' if conserved else 'FAILED'}]")
        if args.fingerprints:
            artifacts = {key: value for key, value in (
                ("trace", args.trace),
                ("epoch_metrics", args.epoch_metrics),
                ("ledger", args.ledger),
                ("audit", args.audit)) if value}
            config = {"experiment": args.experiment, "seed": args.seed,
                      "full": bool(args.full), "ha": bool(args.ha),
                      "tenancy": bool(args.tenancy),
                      "power_cap": args.power_cap,
                      "cancel": bool(args.cancel),
                      "epoch_s": args.epoch_s}
            manifest = {**config,
                        "config_digest": obs.digest(config),
                        "artifacts": artifacts}
            document = tracer.fingerprint.write(args.fingerprints,
                                                manifest)
            print(f"[fingerprints: {len(document['runs'])} runs"
                  f" -> {args.fingerprints}]")
        print(obs.run_summary(tracer))
    if audit is not None:
        n_records = audit.write(args.audit)
        print(f"[audit: {n_records} records -> {args.audit}]")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
