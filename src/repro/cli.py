"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro fig15
    python -m repro fig13 --full --seed 7
    python -m repro all            # every experiment, quick mode
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import List, Optional

from repro.experiments import EXPERIMENTS


def _chart(key: str, result) -> None:
    """Terminal graphics for the figures where shape beats digits."""
    from repro import reports
    if key == "fig15":
        shares = {f"{row['freq_ghz']:.1f}GHz": float(row["share_pct"])
                  for row in result.rows}
        print(reports.bar_chart(shares, unit="%"))
    elif key == "fig14":
        for system in ("Baseline", "EcoFaaS"):
            samples = [(float(row["time_s"]), float(row["avg_freq_ghz"]))
                       for row in result.rows
                       if row["system"] == system and row["time_s"] >= 0]
            if samples:
                print(reports.timeline(samples, label=f"{system:8s}"))
    elif key in ("fig12", "fig13", "fig16", "fig17"):
        value_columns = [c for c in result.rows[0] if c.startswith("norm_")]
        key_column = next(iter(result.rows[0]))
        print(reports.comparison_table(result.rows, key_column,
                                       value_columns))
    print()


def _run_one(key: str, quick: bool, seed: int, chart: bool = False) -> None:
    module = importlib.import_module(EXPERIMENTS[key])
    start = time.perf_counter()
    result = module.run(quick=quick, seed=seed)
    elapsed = time.perf_counter() - start
    print(result.format_table())
    if chart:
        _chart(key, result)
    print(f"[{key} completed in {elapsed:.1f}s]")
    print()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ecofaas",
        description="EcoFaaS reproduction: regenerate the paper's tables"
                    " and figures as text tables.")
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'list', or 'all'")
    parser.add_argument(
        "--full", action="store_true",
        help="run at closer-to-paper scale (much slower)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    parser.add_argument("--chart", action="store_true",
                        help="also render ASCII charts where applicable")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for key, module_name in EXPERIMENTS.items():
            print(f"  {key:10s} {module_name}")
        return 0

    if args.experiment == "all":
        # One failing experiment must not abort the whole sweep: run every
        # one, report the failures at the end, and exit non-zero if any.
        failures: List[str] = []
        for key in EXPERIMENTS:
            try:
                _run_one(key, quick=not args.full, seed=args.seed,
                         chart=args.chart)
            except Exception as error:  # noqa: BLE001 - sweep must go on
                failures.append(key)
                print(f"[{key} FAILED: {type(error).__name__}: {error}]",
                      file=sys.stderr)
                print()
        if failures:
            print(f"{len(failures)} experiment(s) failed:"
                  f" {', '.join(failures)}", file=sys.stderr)
            return 1
        return 0

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r};"
              f" try 'list'", file=sys.stderr)
        return 2
    _run_one(args.experiment, quick=not args.full, seed=args.seed,
             chart=args.chart)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
