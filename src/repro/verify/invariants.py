"""Cross-layer invariant monitors (the online half of ``repro.verify``).

A :class:`Verifier` is the machine-checked statement of the simulator's
safety properties: energy accounting conserves, invocation lifecycles
terminate exactly once, circuit breakers only take legal transitions,
HA epochs fence monotonically, tenant budgets and the power-cap ladder
stay inside their documented bounds, and the kernel clock never runs
backwards. The monitors are wired through ``Environment.verify`` — the
shared :data:`NULL_VERIFIER` by default, following the ``env.trace`` /
``env.prof`` null-object pattern — so verification-off runs execute the
exact pre-verify code paths and stay bit-identical to the stored seed
fingerprints.

A bound verifier only *reads* simulation state: it draws no random
numbers, schedules nothing but its own sweep timeout, and mutates no
platform structure, so armed runs produce the same metrics as unarmed
ones (the ``--verify`` determinism contract). Violations are recorded,
never raised mid-run — a broken invariant must not change the schedule
it is observing.

The full catalog — statement, tolerance, layers spanned, and what
falsifies each invariant — lives in ``DESIGN.md`` §12.

This module deliberately imports nothing from the rest of ``repro``:
the sim kernel imports :data:`NULL_VERIFIER` at startup, so anything
heavier here would close an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Absolute slack on floating-point comparisons (clock, joules).
EPS = 1e-9

#: Relative tolerance for energy-conservation style sum checks (matches
#: ``EnergyLedger.TOLERANCE``).
REL_TOLERANCE = 1e-6

#: The circuit breaker's legal state machine (DESIGN.md §7):
#: closed -> open -> half_open -> {closed, open}. Everything else —
#: notably the open -> closed jump that skips the probe — is a bug.
LEGAL_BREAKER_TRANSITIONS = frozenset({
    ("closed", "open"),
    ("open", "half_open"),
    ("half_open", "closed"),
    ("half_open", "open"),
})

#: The breaker states that may appear at any instant.
BREAKER_STATES = frozenset({"closed", "open", "half_open"})


@dataclass(frozen=True)
class Violation:
    """One observed breach of a declared invariant."""

    #: Invariant name (the DESIGN.md §12 catalog key).
    invariant: str
    #: Simulation time the breach was observed at.
    time_s: float
    #: Run label (the system under test), for multi-run verifiers.
    run: str
    #: Human-readable statement of what went wrong.
    message: str
    #: Sorted (key, value) evidence pairs — kept as a tuple so the
    #: violation list serializes canonically for byte-identical replays.
    details: Tuple[Tuple[str, object], ...] = ()

    def to_json(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "time_s": self.time_s,
            "run": self.run,
            "message": self.message,
            "details": {key: value for key, value in self.details},
        }


class NullVerifier:
    """The do-nothing verifier installed on every fresh environment."""

    enabled = False

    def bind(self, env) -> "NullVerifier":
        return self

    def begin_run(self, label: str) -> None:
        pass

    def on_step(self, now: float) -> None:
        pass

    def on_breaker_transition(self, function: str, old: str,
                              new: str) -> None:
        pass

    def on_tenant_admit(self, benchmark: str, tenant, action: str) -> None:
        pass

    def on_job_complete(self, job) -> None:
        pass

    def arm(self, cluster) -> None:
        pass

    def close_run(self, cluster) -> None:
        pass

    def check_fingerprints(self, recorder, entry, cluster) -> None:
        pass


#: The shared null verifier (one instance; it holds no state).
NULL_VERIFIER = NullVerifier()


@dataclass
class _RunState:
    """Per-cluster monotonicity trackers carried between sweeps."""

    #: Last seen per-server meter total (energy only accrues).
    energy_j: Dict[int, float] = field(default_factory=dict)
    #: Last seen controller-group epoch.
    ha_epoch: int = 0
    #: Last seen per-consumer fencing epoch (``HARuntime._seen_epochs``).
    seen_epochs: Dict[str, int] = field(default_factory=dict)
    #: Last seen power-cap governor epoch.
    cap_epoch: int = 0


class Verifier:
    """Online invariant monitors for one or more cluster runs.

    Usage mirrors the tracer: ``verifier.bind(env)`` installs it as
    ``env.verify`` (arming the kernel's clock hook and the platform's
    transition hooks), ``verifier.arm(cluster)`` wires the breaker
    observer and starts the periodic read-only sweep, and
    ``verifier.close_run(cluster)`` runs the end-of-run lifecycle and
    conservation checks. One verifier may serve many sequential runs
    (the ``repro all --verify`` path); violations accumulate across
    them, stamped with each run's label.
    """

    enabled = True

    def __init__(self, sweep_period_s: float = 0.5):
        if sweep_period_s <= 0:
            raise ValueError(
                f"sweep_period_s must be positive: {sweep_period_s}")
        self.sweep_period_s = sweep_period_s
        self.violations: List[Violation] = []
        #: Clusters armed over this verifier's lifetime.
        self.runs = 0
        self.env = None
        self._label = ""
        self._last_clock: Optional[float] = None
        self._states: Dict[int, _RunState] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def begin_run(self, label: str) -> None:
        """Stamp subsequent violations with ``label`` (the system name)."""
        self._label = label

    def bind(self, env) -> "Verifier":
        """Install as ``env.verify`` and reset the kernel clock tracker."""
        self.env = env
        env.verify = self
        self._last_clock = env.now
        return self

    def arm(self, cluster) -> None:
        """Wire transition observers and start the periodic sweep."""
        self.runs += 1
        state = _RunState()
        self._states[id(cluster)] = state
        guard = getattr(cluster, "guard", None)
        if guard is not None and guard.breakers is not None:
            board = guard.breakers
            board.observer = self.on_breaker_transition
            for breaker in board._breakers.values():
                breaker.observer = self.on_breaker_transition
        cluster.env.process(self._sweep_loop(cluster, state),
                            name="verify-sweep")

    def _sweep_loop(self, cluster, state: _RunState):
        env = cluster.env
        while True:
            self.sweep(cluster, state)
            yield env.timeout(self.sweep_period_s)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, invariant: str, message: str, **details) -> None:
        now = self.env.now if self.env is not None else 0.0
        self.violations.append(Violation(
            invariant=invariant, time_s=float(now), run=self._label,
            message=message,
            details=tuple(sorted(details.items()))))

    def summary(self) -> Dict[str, int]:
        """Violation counts per invariant name (sorted)."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant,
                                                     0) + 1
        return dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    # Event hooks (called from the kernel and the platform layers)
    # ------------------------------------------------------------------
    def on_step(self, now: float) -> None:
        """Kernel hook: the simulation clock must never run backwards."""
        last = self._last_clock
        if last is not None and now < last - EPS:
            self.record("clock-monotonic",
                        f"kernel clock moved backwards:"
                        f" {last:.9f}s -> {now:.9f}s",
                        previous_s=last, now_s=now)
        self._last_clock = now

    def on_breaker_transition(self, function: str, old: str,
                              new: str) -> None:
        """Breaker hook: only the documented transitions are legal."""
        if new not in BREAKER_STATES:
            self.record("breaker-transition",
                        f"breaker[{function}] entered unknown state"
                        f" {new!r}", function=function, state=new)
            return
        if old != new and (old, new) not in LEGAL_BREAKER_TRANSITIONS:
            self.record("breaker-transition",
                        f"breaker[{function}] took illegal transition"
                        f" {old} -> {new}",
                        function=function, old=old, new=new)

    def on_tenant_admit(self, benchmark: str, tenant, action: str) -> None:
        """Tenancy hook: over-budget best-effort arrivals must shed.

        Called only for arrivals whose owning tenant is over budget at
        decision time, with the enforcement action taken.
        """
        if tenant.best_effort and action != "shed":
            self.record("tenant-enforcement",
                        f"over-budget best-effort tenant {tenant.name}"
                        f" arrival of {benchmark} was {action},"
                        f" not shed",
                        tenant=tenant.name, benchmark=benchmark,
                        action=action)

    def on_job_complete(self, job) -> None:
        """Job hook: cancelled work must never run to completion.

        The cancel layer removes a cancelled job from its pool; if one
        still reaches ``complete()``, the kill leaked and the energy the
        layer claims to reclaim is still being burned.
        """
        if getattr(job, "cancelled", False):
            self.record("cancel-lifecycle",
                        f"job {job.job_id} ({job.function_name}) ran to"
                        f" completion after being cancelled",
                        job=job.job_id, function=job.function_name,
                        attempt=job.attempt)

    # ------------------------------------------------------------------
    # The periodic sweep (pure reads of cluster state)
    # ------------------------------------------------------------------
    def sweep(self, cluster, state: Optional[_RunState] = None) -> None:
        if state is None:
            state = self._states.setdefault(id(cluster), _RunState())
        self._check_kernel_counts(cluster)
        self._check_energy_monotone(cluster, state)
        self._check_breaker_states(cluster)
        self._check_ha(cluster, state)
        self._check_tenancy(cluster, state)
        self._check_cancel(cluster)

    def _check_kernel_counts(self, cluster) -> None:
        if cluster.inflight < 0:
            self.record("kernel-counts",
                        f"negative in-flight workflow count:"
                        f" {cluster.inflight}", inflight=cluster.inflight)
        for node in cluster.nodes:
            if node.outstanding < 0:
                self.record("kernel-counts",
                            f"{node.track} has negative outstanding job"
                            f" count: {node.outstanding}",
                            node=node.track, outstanding=node.outstanding)
            containers = node.containers
            for counter in ("cold_starts", "warm_hits", "kills"):
                value = getattr(containers, counter)
                if value < 0:
                    self.record("kernel-counts",
                                f"{node.track} container counter"
                                f" {counter} went negative: {value}",
                                node=node.track, counter=counter,
                                value=value)

    def _check_energy_monotone(self, cluster, state: _RunState) -> None:
        for server in cluster.servers:
            total = server.meter.total_j
            last = state.energy_j.get(server.server_id, 0.0)
            if total < last - EPS:
                self.record("energy-monotone",
                            f"server{server.server_id} metered energy"
                            f" decreased: {last:.9f} J -> {total:.9f} J",
                            server=server.server_id,
                            previous_j=last, now_j=total)
            state.energy_j[server.server_id] = total
            attributed = sum(server.meter.by_consumer().values())
            if attributed > total * (1.0 + REL_TOLERANCE) + EPS:
                self.record("energy-attribution-bound",
                            f"server{server.server_id} attributes more"
                            f" energy ({attributed:.9f} J) than it"
                            f" metered ({total:.9f} J)",
                            server=server.server_id,
                            attributed_j=attributed, metered_j=total)

    def _check_breaker_states(self, cluster) -> None:
        guard = getattr(cluster, "guard", None)
        if guard is None or guard.breakers is None:
            return
        for function, breaker_state in guard.breakers.states().items():
            if breaker_state not in BREAKER_STATES:
                self.record("breaker-transition",
                            f"breaker[{function}] sits in unknown state"
                            f" {breaker_state!r}",
                            function=function, state=breaker_state)

    def _check_ha(self, cluster, state: _RunState) -> None:
        ha = getattr(cluster, "ha", None)
        if ha is None:
            return
        metrics = cluster.metrics
        journal_redispatches = ha.journal.redispatch_count()
        if metrics.ha_redispatches != journal_redispatches:
            self.record("ha-journal-crosscheck",
                        f"frontend accounted {metrics.ha_redispatches}"
                        f" re-dispatches but the journal authorised"
                        f" {journal_redispatches}",
                        metrics=metrics.ha_redispatches,
                        journal=journal_redispatches)
        if ha.journal.duplicate_completions != 0:
            self.record("ha-exactly-once",
                        f"{ha.journal.duplicate_completions} completion(s)"
                        f" recorded for already-completed idempotency"
                        f" keys",
                        duplicate_completions=(
                            ha.journal.duplicate_completions))
        group = ha.controllers
        if group.epoch < state.ha_epoch:
            self.record("ha-epoch-monotone",
                        f"controller epoch moved backwards:"
                        f" {state.ha_epoch} -> {group.epoch}",
                        previous=state.ha_epoch, now=group.epoch)
        state.ha_epoch = group.epoch
        believers = [replica.rid for replica in group.replicas
                     if not replica.down and replica.believes_leader
                     and replica.believed_epoch == group.epoch]
        if len(believers) > 1:
            self.record("ha-single-leader",
                        f"{len(believers)} replicas believe leadership"
                        f" at the current epoch {group.epoch}:"
                        f" {believers}",
                        epoch=group.epoch,
                        believers=tuple(believers))
        for endpoint in sorted(ha._seen_epochs):
            epoch = ha._seen_epochs[endpoint]
            last = state.seen_epochs.get(endpoint, 0)
            if epoch < last:
                self.record("ha-fencing",
                            f"consumer {endpoint} accepted a decision"
                            f" from a fenced epoch: {last} -> {epoch}",
                            endpoint=endpoint, previous=last, now=epoch)
            if epoch > group.epoch:
                self.record("ha-fencing",
                            f"consumer {endpoint} saw epoch {epoch}"
                            f" ahead of the controller group's"
                            f" {group.epoch}",
                            endpoint=endpoint, seen=epoch,
                            group=group.epoch)
            state.seen_epochs[endpoint] = epoch

    def _check_tenancy(self, cluster, state: _RunState) -> None:
        tenancy = getattr(cluster, "tenancy", None)
        if tenancy is None:
            return
        now = cluster.env.now
        governor = tenancy.governor
        if governor is not None:
            if not 0 <= governor.steps <= governor.max_steps:
                self.record("powercap-ladder",
                            f"governor actuation depth {governor.steps}"
                            f" outside [0, {governor.max_steps}]",
                            steps=governor.steps,
                            max_steps=governor.max_steps)
            fraction = governor.core_fraction()
            floor = governor.config.min_core_fraction
            if not floor - EPS <= fraction <= 1.0 + EPS:
                self.record("powercap-ladder",
                            f"usable core fraction {fraction:.6f}"
                            f" outside [{floor}, 1.0]",
                            fraction=fraction, floor=floor)
            ceiling = governor.freq_ceiling_ghz()
            if ceiling is not None and ceiling not in governor.scale.levels:
                self.record("powercap-ladder",
                            f"frequency ceiling {ceiling} GHz is not a"
                            f" DVFS level of the scale",
                            ceiling_ghz=ceiling,
                            levels=tuple(governor.scale.levels))
            if governor.epoch < state.cap_epoch:
                self.record("powercap-epoch",
                            f"governor epoch moved backwards:"
                            f" {state.cap_epoch} -> {governor.epoch}",
                            previous=state.cap_epoch, now=governor.epoch)
            state.cap_epoch = governor.epoch
        for tenant in tenancy.registry.tenants():
            used = tenancy.registry.used_j(tenant.name, now)
            lifetime = tenancy.registry.lifetime_j(tenant.name)
            if used < -EPS or used > lifetime * (1.0 + REL_TOLERANCE) + EPS:
                self.record("tenant-budget",
                            f"tenant {tenant.name} windowed use"
                            f" {used:.9f} J outside [0, lifetime"
                            f" {lifetime:.9f} J]",
                            tenant=tenant.name, used_j=used,
                            lifetime_j=lifetime)

    def _check_cancel(self, cluster) -> None:
        cancel = getattr(cluster, "cancel", None)
        if cancel is None:
            return
        metrics = cluster.metrics
        budget = cancel.budget
        if budget is not None:
            pool = budget.pool
            total = pool.available + pool.spent + pool.refunded
            if total != pool.capacity or pool.available < 0 \
                    or pool.spent < 0 or pool.refunded < 0:
                self.record("retry-budget",
                            f"retry-token pool does not conserve:"
                            f" available {pool.available} + spent"
                            f" {pool.spent} + refunded {pool.refunded}"
                            f" != capacity {pool.capacity}",
                            available=pool.available, spent=pool.spent,
                            refunded=pool.refunded,
                            capacity=pool.capacity)
            if metrics.retries > budget.granted_total:
                self.record("retry-budget",
                            f"frontend performed {metrics.retries}"
                            f" retries but the budget only granted"
                            f" {budget.granted_total}",
                            retries=metrics.retries,
                            granted=budget.granted_total)
        if metrics.doomed_workflows > metrics.failed_workflows:
            self.record("cancel-lifecycle",
                        f"{metrics.doomed_workflows} doomed workflows"
                        f" exceed the {metrics.failed_workflows} failed"
                        f" ones they are a sub-count of",
                        doomed=metrics.doomed_workflows,
                        failed=metrics.failed_workflows)

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def close_run(self, cluster) -> None:
        """Lifecycle conservation and final-state checks for one run."""
        state = self._states.pop(id(cluster), _RunState())
        self.sweep(cluster, state)
        metrics = cluster.metrics
        submitted = getattr(cluster, "submitted_workflows", None)
        if submitted is not None:
            completed = len(metrics.workflow_records)
            shed = metrics.shed_count()
            terminal = (completed + metrics.failed_workflows + shed
                        + cluster.inflight)
            if submitted != terminal:
                self.record(
                    "workflow-lifecycle",
                    f"{submitted} workflows submitted but"
                    f" {terminal} accounted for ({completed} completed"
                    f" + {metrics.failed_workflows} failed + {shed} shed"
                    f" + {cluster.inflight} in flight)",
                    submitted=submitted, completed=completed,
                    failed=metrics.failed_workflows, shed=shed,
                    inflight=cluster.inflight)
        ha = getattr(cluster, "ha", None)
        if ha is not None:
            if metrics.ha_duplicate_completions != 0:
                self.record("ha-exactly-once",
                            f"{metrics.ha_duplicate_completions}"
                            f" duplicate workflow completion(s) reached"
                            f" the frontend",
                            duplicates=metrics.ha_duplicate_completions)
            epochs = [epoch for _, _, epoch in ha.controllers.elections]
            if any(b <= a for a, b in zip(epochs, epochs[1:])):
                self.record("ha-epoch-monotone",
                            f"election log epochs are not strictly"
                            f" increasing: {epochs}",
                            epochs=tuple(epochs))

    def check_fingerprints(self, recorder, entry, cluster) -> None:
        """Recompute the run's progressive chain digests as a self-check.

        The fold is re-derived here with inline hashing (genesis link and
        chain step spelled out rather than imported) over the canonical
        epoch payloads the recorder retained, so a bug in the recorder's
        chain arithmetic — or a chain mutated after the fact — cannot
        agree with this recomputation by construction. The run's final
        whole-cluster fingerprint is cross-checked too.
        """
        import hashlib  # stdlib; keeps the module import-free at top level
        payloads = recorder.payloads.get(entry["run"], {})
        for subsystem, chain in sorted(entry["chains"].items()):
            link = hashlib.sha256(
                f"repro.obs.fingerprint/1/{subsystem}".encode()).hexdigest()
            recomputed = []
            for payload in payloads.get(subsystem, []):
                link = hashlib.sha256(
                    (link + "\n" + payload).encode()).hexdigest()
                recomputed.append(link)
            if recomputed != list(chain):
                first = next((i for i, (a, b) in enumerate(
                    zip(recomputed, chain)) if a != b),
                    min(len(recomputed), len(chain)))
                self.record("fingerprint-chain",
                            f"{subsystem} chain does not match its"
                            f" recomputation (first mismatch at epoch"
                            f" {first}; {len(chain)} recorded vs"
                            f" {len(recomputed)} recomputed links)",
                            subsystem=subsystem, epoch=first,
                            recorded=len(chain),
                            recomputed=len(recomputed))
        from repro.obs.fingerprint import cluster_fingerprint  # lazy: no cycle
        final = cluster_fingerprint(cluster)
        if final != entry["final"]:
            self.record("fingerprint-chain",
                        f"final fingerprint {entry['final'][:12]}… does"
                        f" not match the cluster's {final[:12]}…",
                        recorded=entry["final"], recomputed=final)
