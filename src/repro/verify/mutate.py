"""Planted bugs for validating the verifier and fuzzer (test hook).

``repro fuzz --mutate <name>`` (hidden flag) and the verify test suite
use these to prove the pipeline *finds and shrinks* real violations
rather than just passing on a correct tree. Each mutation is a
monkeypatch installed for the duration of a ``with planted(name):``
block, reverting on exit even if the run raises.

The three bugs are chosen to land in three different layers, one per
major invariant family:

* ``journal-fence`` — ``RedispatchJournal.record_redispatch`` silently
  drops the write, so the exactly-once journal never sees the
  re-dispatches the frontend performs. Falsifies the
  ``ha-journal-crosscheck`` invariant (and, under repeated failovers,
  exactly-once itself).
* ``ledger-bucket`` — ``EnergyLedger.record_core`` skips cold-start
  setup segments (``raw == "active_setup"``), so classified components
  no longer sum to the hardware meters. Falsifies
  ``energy-conservation``.
* ``breaker-jump`` — ``CircuitBreaker.allow`` jumps an OPEN breaker
  straight back to CLOSED once the cooldown elapses, skipping the
  half-open probe. Falsifies ``breaker-transition``.
* ``cancel-leak`` — ``CorePoolScheduler.cancel_job`` flags the job
  cancelled but never removes it from the pool, so "killed" work keeps
  executing and runs to completion. Falsifies ``cancel-lifecycle``
  (cancelled work must never complete).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.guard import breaker as _breaker_mod
from repro.ha import journal as _journal_mod
from repro.obs import ledger as _ledger_mod
from repro.platform import scheduler as _scheduler_mod

#: Public mutation names (the ``--mutate`` vocabulary), mapped to the
#: invariant family each one falsifies.
MUTATIONS = {
    "journal-fence": "ha-journal-crosscheck",
    "ledger-bucket": "energy-conservation",
    "breaker-jump": "breaker-transition",
    "cancel-leak": "cancel-lifecycle",
}


def _plant_journal_fence():
    original = _journal_mod.RedispatchJournal.record_redispatch

    def record_redispatch(self, key, now=0.0):
        return None  # bug: the fence write is dropped

    _journal_mod.RedispatchJournal.record_redispatch = record_redispatch
    return ("record_redispatch", original)


def _plant_ledger_bucket():
    original = _ledger_mod.EnergyLedger.record_core

    def record_core(self, core, t0, t1, joules, raw, job=None):
        if raw == "active_setup":  # bug: cold-start joules vanish
            return
        original(self, core, t0, t1, joules, raw, job=job)

    _ledger_mod.EnergyLedger.record_core = record_core
    return ("record_core", original)


def _plant_breaker_jump():
    original = _breaker_mod.CircuitBreaker.allow

    def allow(self, now):
        if (self.state == _breaker_mod.OPEN
                and now - self._opened_at >= self.config.open_for_s):
            # bug: skip the half-open probe entirely
            self._set_state(_breaker_mod.CLOSED)
            self._opened_at = None
            self._probe_in_flight = False
            self._outcomes.clear()
            return True
        return original(self, now)

    _breaker_mod.CircuitBreaker.allow = allow
    return ("allow", original)


def _plant_cancel_leak():
    original = _scheduler_mod.CorePoolScheduler.cancel_job

    def cancel_job(self, job):
        if job.finished or job.aborted or job.cancelled:
            return False
        found = (any(queued is job for _, queued in self._ready)
                 or any(r is job for r in self._running.values())
                 or job.job_id in self._blocked_jobs)
        if not found:
            return False
        job.cancelled = True  # bug: flagged but left running in the pool
        return True

    _scheduler_mod.CorePoolScheduler.cancel_job = cancel_job
    return ("cancel_job", original)


_PLANTERS = {
    "journal-fence": (_journal_mod.RedispatchJournal, _plant_journal_fence),
    "ledger-bucket": (_ledger_mod.EnergyLedger, _plant_ledger_bucket),
    "breaker-jump": (_breaker_mod.CircuitBreaker, _plant_breaker_jump),
    "cancel-leak": (_scheduler_mod.CorePoolScheduler, _plant_cancel_leak),
}


@contextmanager
def planted(name: str):
    """Install the named bug for the duration of the block."""
    if name not in _PLANTERS:
        raise ValueError(
            f"unknown mutation {name!r}; expected one of"
            f" {sorted(MUTATIONS)}")
    target, planter = _PLANTERS[name]
    attribute, original = planter()
    try:
        yield
    finally:
        setattr(target, attribute, original)
