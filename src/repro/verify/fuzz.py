"""Seeded chaos fuzzing with delta-debugged, replayable repros.

The fuzzer behind ``repro fuzz``: each trial draws a random — but fully
seeded — *trial spec* (cluster shape, Poisson load with an optional
overload burst, guard/HA/tenancy/cancel config draws, and a fault
schedule composing every fault kind), runs it with every invariant
monitor armed
plus the energy ledger's conservation check, and records any violation.

A violating spec is then **shrunk**: classic ddmin over the fault
events (does half the schedule still violate?), then per-event
parameter simplification, then config-section drops (burst, admission,
tenancy, cancel, hedging), then run-length truncation — each candidate
accepted
only if it still reproduces the original violation signature (the set
of violated invariant names). The result is a minimal, self-contained
JSON artifact; ``repro fuzz --replay <artifact>`` re-executes it and
compares the outcome byte-for-byte.

Everything is derived from ``SeedSequence([seed, trial, ...])``
streams: the same ``--trials/--seed`` always explores the identical
schedule space, and artifacts replay bit-identically.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs, verify
from repro.baselines import BaselineSystem
from repro.cancel.config import (
    CancelConfig,
    DeadlineConfig,
    RetryBudgetConfig,
)
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import run_cluster
from repro.faults.plan import FaultEvent, FaultPlan
from repro.guard.config import AdmissionConfig, BreakerConfig, GuardConfig
from repro.ha.config import HAConfig
from repro.obs.fingerprint import cluster_fingerprint
from repro.obs.ledger import EnergyConservationError, EnergyLedger
from repro.obs.tracer import Tracer
from repro.platform.cluster import ClusterConfig
from repro.platform.reliability import ReliabilityPolicy
from repro.sim.rng import stable_hash
from repro.tenancy.config import PowerCapConfig, TenancyConfig, TenantSpec
from repro.traces.poisson import (
    PoissonLoadConfig,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.traces.trace import Trace, TraceEvent
from repro.verify.invariants import Verifier
from repro.workloads.registry import all_benchmarks

#: Artifact schema identifier.
ARTIFACT_FORMAT = "repro.verify.fuzz/1"

#: Controller replicas in every HA-armed trial (the HAConfig default).
N_CONTROLLERS = 3


# ---------------------------------------------------------------------------
# Trial-spec sampling
# ---------------------------------------------------------------------------
def _function_names(benchmarks: Sequence[str]) -> List[str]:
    keep = set(benchmarks)
    names = set()
    for workflow in all_benchmarks():
        if workflow.name not in keep:
            continue
        for stage in workflow.stages:
            for fn in stage.functions:
                names.add(fn.name)
    return sorted(names)


def _sample_plan(rng, duration_s: float, n_servers: int,
                 functions: Sequence[str], with_ha: bool
                 ) -> List[Dict[str, object]]:
    """A random fault schedule over every kind this trial can express.

    Crash windows are kept non-overlapping per node (an overlapping
    crash would land on an already-down node and be absorbed — noise,
    not signal, for shrinking), and partition/controller faults are
    drawn only when the HA layer is armed to absorb them.
    """
    window = (0.05 * duration_s, 0.70 * duration_s)
    events: List[FaultEvent] = []
    crash_windows: Dict[int, List[Tuple[float, float]]] = {}
    for _ in range(int(rng.integers(0, 4))):
        t = float(rng.uniform(*window))
        node = int(rng.integers(n_servers))
        down = float(rng.uniform(1.0, 4.0))
        span = (t, t + down)
        if any(span[0] < e and s < span[1]
               for s, e in crash_windows.get(node, [])):
            continue
        crash_windows.setdefault(node, []).append(span)
        events.append(FaultEvent(time_s=t, kind="node_crash", node=node,
                                 duration_s=down))
    if functions:
        for _ in range(int(rng.integers(0, 5))):
            events.append(FaultEvent(
                time_s=float(rng.uniform(*window)), kind="container_kill",
                node=int(rng.integers(n_servers)),
                function=str(rng.choice(list(functions)))))
    for _ in range(int(rng.integers(0, 4))):
        events.append(FaultEvent(
            time_s=float(rng.uniform(*window)), kind="rpc_spike",
            node=int(rng.integers(n_servers)),
            duration_s=float(rng.uniform(0.5, 2.5)),
            magnitude=float(rng.uniform(2.0, 8.0))))
    for _ in range(int(rng.integers(0, 3))):
        events.append(FaultEvent(
            time_s=float(rng.uniform(*window)), kind="dvfs_stall",
            node=int(rng.integers(n_servers)),
            duration_s=float(rng.uniform(0.5, 2.5)),
            magnitude=float(rng.uniform(50.0, 200.0))))
    if with_ha:
        for _ in range(int(rng.integers(0, 3))):
            events.append(FaultEvent(
                time_s=float(rng.uniform(*window)),
                kind="network_partition",
                node=int(rng.integers(n_servers)),
                duration_s=float(rng.uniform(0.5, 2.0)),
                direction=str(rng.choice(["both", "out", "in"]))))
        for _ in range(int(rng.integers(0, 2))):
            events.append(FaultEvent(
                time_s=float(rng.uniform(*window)),
                kind="controller_crash",
                node=int(rng.integers(N_CONTROLLERS)),
                duration_s=float(rng.uniform(0.5, 2.0))))
    plan = FaultPlan(tuple(events)).validate(
        n_servers=n_servers, functions=functions,
        n_controllers=N_CONTROLLERS if with_ha else None)
    return plan.to_json()


def sample_spec(trial: int, seed: int) -> Dict[str, object]:
    """Draw one self-contained, JSON-ready trial spec."""
    rng = np.random.default_rng(np.random.SeedSequence(
        [seed, trial, stable_hash("verify/fuzz")]))
    names = sorted(wf.name for wf in all_benchmarks())
    k = int(rng.integers(4, min(9, len(names) + 1)))
    benchmarks = sorted(str(b) for b in
                        rng.choice(names, size=k, replace=False))
    duration_s = float(rng.uniform(6.0, 12.0))
    n_servers = int(rng.integers(2, 4))
    with_ha = bool(rng.random() < 0.7)
    spec: Dict[str, object] = {
        "trial": trial,
        "seed": seed,
        "system": str(rng.choice(["EcoFaaS", "Baseline"], p=[0.8, 0.2])),
        "duration_s": round(duration_s, 3),
        "drain_s": round(float(rng.uniform(4.0, 8.0)), 3),
        "n_servers": n_servers,
        "utilization": round(float(rng.uniform(0.2, 1.2)), 3),
        "trace_seed": int(rng.integers(1, 2**31)),
        "benchmarks": benchmarks,
        "reliability": {
            "max_retries": int(rng.integers(4, 9)),
            "backoff_base_s": 0.05,
            "backoff_jitter": round(float(rng.uniform(0.0, 0.2)), 3),
            "invocation_timeout_s": (
                round(float(rng.uniform(2.0, 6.0)), 3)
                if rng.random() < 0.5 else None),
            "hedge_after_s": (round(float(rng.uniform(0.5, 2.0)), 3)
                              if rng.random() < 0.3 else None),
        },
        "guard": {
            "breaker": {
                "window_s": round(float(rng.uniform(4.0, 10.0)), 3),
                "min_failures": int(rng.integers(2, 4)),
                "failure_rate": round(float(rng.uniform(0.4, 0.7)), 3),
                "open_for_s": round(float(rng.uniform(1.0, 3.0)), 3),
            },
            "admission": ({
                "rate_rps": round(float(rng.uniform(5.0, 30.0)), 3),
                "burst": round(float(rng.uniform(5.0, 15.0)), 3),
                "brownout_ewt_s": [0.5, 1.5],
            } if rng.random() < 0.4 else None),
        },
        "ha": ({
            "phi_threshold": round(float(rng.uniform(4.0, 8.0)), 3),
            "dead_after_s": 2.0,
            "lease_s": 1.0,
            "redispatch": True,
        } if with_ha else None),
        "tenancy": None,
        "burst": ({
            "utilization": round(float(rng.uniform(1.5, 3.0)), 3),
            "start_s": round(float(rng.uniform(0.1, 0.4) * duration_s), 3),
            "duration_s": round(float(rng.uniform(1.0, 3.0)), 3),
            "seed": int(rng.integers(1, 2**31)),
        } if rng.random() < 0.5 else None),
    }
    if rng.random() < 0.5 and len(benchmarks) >= 2:
        split = max(1, len(benchmarks) // 2)
        spec["tenancy"] = {
            "tenants": [
                {"name": "slo", "benchmarks": benchmarks[:split],
                 "budget_j": round(float(rng.uniform(100.0, 600.0)), 1),
                 "window_s": round(float(rng.uniform(5.0, 10.0)), 3),
                 "best_effort": False},
                {"name": "batch", "benchmarks": benchmarks[split:],
                 "budget_j": round(float(rng.uniform(50.0, 300.0)), 1),
                 "window_s": round(float(rng.uniform(5.0, 10.0)), 3),
                 "best_effort": True},
            ],
            "power_cap": ({
                "cap_w": round(float(rng.uniform(150.0, 450.0)), 1),
                "period_s": 1.0,
            } if rng.random() < 0.5 else None),
        }
    spec["plan"] = _sample_plan(
        rng, duration_s, n_servers, _function_names(benchmarks), with_ha)
    # The cancel section draws from its own stream so every pre-existing
    # draw above (and thus every pinned seed/trial outcome that does not
    # depend on cancellation) is untouched by its addition.
    crng = np.random.default_rng(np.random.SeedSequence(
        [seed, trial, stable_hash("verify/fuzz/cancel")]))
    spec["cancel"] = None
    if crng.random() < 0.6:
        deadline = ({
            "slack_s": round(float(crng.uniform(0.0, 0.5)), 3),
        } if crng.random() < 0.8 else None)
        retry_budget = ({
            "ratio": round(float(crng.uniform(0.05, 0.3)), 3),
            "window_s": round(float(crng.uniform(2.0, 6.0)), 3),
            "floor": int(crng.integers(1, 6)),
        } if crng.random() < 0.7 else None)
        if deadline is not None or retry_budget is not None:
            spec["cancel"] = {"deadline": deadline,
                              "retry_budget": retry_budget}
    return spec


# ---------------------------------------------------------------------------
# Spec -> concrete run
# ---------------------------------------------------------------------------
def _build_system(spec: Dict[str, object]):
    if spec.get("system") == "Baseline":
        return BaselineSystem()
    return EcoFaaSSystem(EcoFaaSConfig())


def _build_trace(spec: Dict[str, object]) -> Trace:
    benchmarks = list(spec["benchmarks"])
    keep = set(benchmarks)
    workflows = [wf for wf in all_benchmarks() if wf.name in keep]
    duration = float(spec["duration_s"])
    total_cores = int(spec["n_servers"]) * 20
    # rate_for_utilization() only accepts (0, 1]; the arrival rate is
    # linear in utilization, so scale the unit rate for overload draws.
    unit_rate = rate_for_utilization(workflows, 1.0,
                                     total_cores=total_cores)
    base = generate_poisson_trace(PoissonLoadConfig(
        benchmarks, rate_rps=unit_rate * float(spec["utilization"]),
        duration_s=duration, seed=int(spec["trace_seed"])))
    burst = spec.get("burst")
    if burst is None:
        return base
    burst_rate = unit_rate * float(burst["utilization"])
    start = float(burst["start_s"])
    burst_len = min(float(burst["duration_s"]),
                    max(0.5, duration - start - 0.1))
    extra = generate_poisson_trace(PoissonLoadConfig(
        benchmarks, rate_rps=burst_rate, duration_s=burst_len,
        seed=int(burst["seed"])))
    shifted = [TraceEvent(round(e.time_s + start, 9), e.benchmark)
               for e in extra.events
               if e.time_s + start < duration]
    return Trace(list(base.events) + shifted, duration)


def _build_config(spec: Dict[str, object]) -> ClusterConfig:
    rel = spec["reliability"]
    reliability = ReliabilityPolicy(
        max_retries=int(rel["max_retries"]),
        backoff_base_s=float(rel["backoff_base_s"]),
        backoff_jitter=float(rel["backoff_jitter"]),
        invocation_timeout_s=rel["invocation_timeout_s"],
        hedge_after_s=rel["hedge_after_s"])
    guard = None
    if spec.get("guard") is not None:
        g = spec["guard"]
        admission = None
        if g.get("admission") is not None:
            a = g["admission"]
            admission = AdmissionConfig(
                rate_rps=float(a["rate_rps"]), burst=float(a["burst"]),
                brownout_ewt_s=tuple(a["brownout_ewt_s"]))
        b = g["breaker"]
        guard = GuardConfig(
            admission=admission,
            breaker=BreakerConfig(
                window_s=float(b["window_s"]),
                min_failures=int(b["min_failures"]),
                failure_rate=float(b["failure_rate"]),
                open_for_s=float(b["open_for_s"])))
    ha = None
    if spec.get("ha") is not None:
        h = spec["ha"]
        ha = HAConfig(phi_threshold=float(h["phi_threshold"]),
                      dead_after_s=float(h["dead_after_s"]),
                      lease_s=float(h["lease_s"]),
                      n_controllers=N_CONTROLLERS,
                      redispatch=bool(h["redispatch"]))
    tenancy = None
    if spec.get("tenancy") is not None:
        t = spec["tenancy"]
        tenants = tuple(TenantSpec(
            name=row["name"], benchmarks=tuple(row["benchmarks"]),
            budget_j=row["budget_j"], window_s=float(row["window_s"]),
            best_effort=bool(row["best_effort"]))
            for row in t["tenants"])
        power_cap = None
        if t.get("power_cap") is not None:
            p = t["power_cap"]
            power_cap = PowerCapConfig(cap_w=float(p["cap_w"]),
                                       period_s=float(p["period_s"]))
        tenancy = TenancyConfig(tenants=tenants, power_cap=power_cap)
    cancel = None
    if spec.get("cancel") is not None:
        c = spec["cancel"]
        deadline = None
        if c.get("deadline") is not None:
            deadline = DeadlineConfig(
                slack_s=float(c["deadline"]["slack_s"]))
        retry_budget = None
        if c.get("retry_budget") is not None:
            rb = c["retry_budget"]
            retry_budget = RetryBudgetConfig(
                ratio=float(rb["ratio"]),
                window_s=float(rb["window_s"]),
                floor=int(rb["floor"]))
        cancel = CancelConfig(deadline=deadline,
                              retry_budget=retry_budget)
    return ClusterConfig(
        n_servers=int(spec["n_servers"]),
        drain_s=float(spec["drain_s"]),
        reliability=reliability, guard=guard, ha=ha, tenancy=tenancy,
        cancel=cancel)


def run_trial(spec: Dict[str, object],
              mutate: Optional[str] = None) -> Dict[str, object]:
    """Execute one spec with all monitors armed; returns the outcome.

    The outcome — violation list plus the run's metrics fingerprint —
    is exactly what replays compare byte-for-byte.
    """
    from repro.verify.mutate import planted  # local: test-hook only
    plan = FaultPlan.from_json(spec["plan"])
    trace = _build_trace(spec)
    config = _build_config(spec)
    verifier = Verifier()
    tracer = Tracer(ledger=EnergyLedger())
    obs.install(tracer)
    verify.install(verifier)
    violations: List[Dict[str, object]] = []
    fingerprint = None
    context = planted(mutate) if mutate else contextlib.nullcontext()
    try:
        with context:
            cluster = run_cluster(_build_system(spec), trace, config,
                                  fault_plan=plan)
            fingerprint = cluster_fingerprint(cluster)
    except EnergyConservationError as exc:
        violations.append({
            "invariant": "energy-conservation", "time_s": -1.0,
            "run": str(spec.get("system", "")),
            "message": str(exc), "details": {}})
    except Exception as exc:  # a crash is itself an invariant breach
        violations.append({
            "invariant": "trial-exception", "time_s": -1.0,
            "run": str(spec.get("system", "")),
            "message": f"{type(exc).__name__}: {exc}", "details": {}})
    finally:
        obs.uninstall()
        verify.uninstall()
    violations = [v.to_json() for v in verifier.violations] + violations
    return {"violations": violations, "fingerprint": fingerprint}


def _signature(result: Dict[str, object]) -> frozenset:
    return frozenset(v["invariant"] for v in result["violations"])


# ---------------------------------------------------------------------------
# Shrinking (ddmin + param/config simplification)
# ---------------------------------------------------------------------------
class _ShrinkBudget:
    def __init__(self, limit: int):
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _reproduces(spec, mutate, target: frozenset,
                budget: _ShrinkBudget) -> bool:
    if not budget.take():
        return False
    return bool(target & _signature(run_trial(spec, mutate=mutate)))


def _with_plan(spec: Dict[str, object],
               events: List[Dict[str, object]]) -> Dict[str, object]:
    out = dict(spec)
    out["plan"] = list(events)
    return out


def _ddmin_events(spec, mutate, target, budget) -> Dict[str, object]:
    """Classic ddmin over the fault-event list."""
    events = list(spec["plan"])
    granularity = 2
    while len(events) >= 2 and granularity <= len(events):
        chunk = max(1, len(events) // granularity)
        reduced = False
        for start in range(0, len(events), chunk):
            candidate = events[:start] + events[start + chunk:]
            trial_spec = _with_plan(spec, candidate)
            if _reproduces(trial_spec, mutate, target, budget):
                events = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    if len(events) == 1:
        empty = _with_plan(spec, [])
        if _reproduces(empty, mutate, target, budget):
            events = []
    return _with_plan(spec, events)


def _shrink_params(spec, mutate, target, budget) -> Dict[str, object]:
    """Simplify surviving events: shorter windows, milder magnitudes."""
    events = list(spec["plan"])
    for index, event in enumerate(events):
        for patch in ({"duration_s": 1.0}, {"magnitude": 2.0},
                      {"duration_s": 1.0, "magnitude": 2.0}):
            if all(event.get(k) == v for k, v in patch.items()):
                continue
            candidate = dict(event)
            candidate.update(patch)
            try:
                FaultEvent(**candidate)
            except (ValueError, TypeError):
                continue
            trial_events = list(events)
            trial_events[index] = candidate
            if _reproduces(_with_plan(spec, trial_events), mutate, target,
                           budget):
                events = trial_events
                break
    return _with_plan(spec, events)


def _shrink_config(spec, mutate, target, budget) -> Dict[str, object]:
    """Drop whole optional sections that are not needed to reproduce."""
    current = dict(spec)
    for section in ("burst", "tenancy", "cancel"):
        if current.get(section) is None:
            continue
        candidate = dict(current)
        candidate[section] = None
        if _reproduces(candidate, mutate, target, budget):
            current = candidate
    cancel = current.get("cancel")
    if cancel is not None:
        for sub in ("deadline", "retry_budget"):
            if cancel.get(sub) is None:
                continue
            other = "retry_budget" if sub == "deadline" else "deadline"
            if cancel.get(other) is None:
                continue  # dropping both == the section drop above
            candidate = dict(current)
            candidate["cancel"] = dict(cancel)
            candidate["cancel"][sub] = None
            if _reproduces(candidate, mutate, target, budget):
                current = candidate
                cancel = current["cancel"]
    if (current.get("guard") is not None
            and current["guard"].get("admission") is not None):
        candidate = dict(current)
        candidate["guard"] = dict(current["guard"])
        candidate["guard"]["admission"] = None
        if _reproduces(candidate, mutate, target, budget):
            current = candidate
    rel = current["reliability"]
    if rel.get("hedge_after_s") is not None:
        candidate = dict(current)
        candidate["reliability"] = dict(rel)
        candidate["reliability"]["hedge_after_s"] = None
        if _reproduces(candidate, mutate, target, budget):
            current = candidate
    if current["plan"]:
        last = max(float(e["time_s"]) + float(e["duration_s"])
                   for e in current["plan"])
        short = round(last + 2.0, 3)
        if short < float(current["duration_s"]):
            candidate = dict(current)
            candidate["duration_s"] = short
            if _reproduces(candidate, mutate, target, budget):
                current = candidate
    return current


def shrink(spec: Dict[str, object], result: Dict[str, object],
           mutate: Optional[str] = None,
           max_tests: int = 64) -> Dict[str, object]:
    """Delta-debug a violating spec to a minimal reproducing one."""
    target = _signature(result)
    budget = _ShrinkBudget(max_tests)
    shrunk = _ddmin_events(spec, mutate, target, budget)
    shrunk = _shrink_params(shrunk, mutate, target, budget)
    shrunk = _shrink_config(shrunk, mutate, target, budget)
    return {
        "spec": shrunk,
        "tests": budget.spent,
        "events_before": len(spec["plan"]),
        "events_after": len(shrunk["plan"]),
    }


# ---------------------------------------------------------------------------
# Artifacts + replay
# ---------------------------------------------------------------------------
def make_artifact(spec, result, shrunk, mutate: Optional[str]
                  ) -> Dict[str, object]:
    final = run_trial(shrunk["spec"], mutate=mutate)
    return {
        "format": ARTIFACT_FORMAT,
        "seed": spec["seed"],
        "trial": spec["trial"],
        "mutate": mutate,
        "spec": shrunk["spec"],
        "violations": final["violations"],
        "fingerprint": final["fingerprint"],
        "shrink": {
            "tests": shrunk["tests"],
            "events_before": shrunk["events_before"],
            "events_after": shrunk["events_after"],
            "original_violations": result["violations"],
        },
    }


def write_artifact(artifact: Dict[str, object], directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    suffix = f"-{artifact['mutate']}" if artifact["mutate"] else ""
    path = os.path.join(
        directory,
        f"fuzz-s{artifact['seed']}-t{artifact['trial']}{suffix}.json")
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def replay(path: str) -> Dict[str, object]:
    """Re-execute an artifact; byte-compares the outcome to the stored one.

    Returns ``{"match": bool, "stored": ..., "replayed": ...}`` where the
    compared documents are the canonical JSON of (violations,
    fingerprint).
    """
    with open(path) as handle:
        artifact = json.load(handle)
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: not a fuzz artifact"
            f" (format={artifact.get('format')!r})")
    result = run_trial(artifact["spec"], mutate=artifact.get("mutate"))
    stored = json.dumps({"violations": artifact["violations"],
                         "fingerprint": artifact["fingerprint"]},
                        sort_keys=True)
    replayed = json.dumps(result, sort_keys=True)
    return {"match": stored == replayed,
            "stored": stored, "replayed": replayed,
            "violations": result["violations"]}


# ---------------------------------------------------------------------------
# The campaign driver (repro fuzz)
# ---------------------------------------------------------------------------
def campaign(trials: int, seed: int, mutate: Optional[str] = None,
             artifact_dir: Optional[str] = None, max_shrink: int = 64,
             echo=print) -> Dict[str, object]:
    """Run ``trials`` seeded trials; shrink and save every violation."""
    found: List[Dict[str, object]] = []
    for trial in range(trials):
        spec = sample_spec(trial, seed)
        result = run_trial(spec, mutate=mutate)
        names = sorted(_signature(result))
        echo(f"trial {trial:3d}: {len(spec['plan'])} faults,"
             f" {spec['n_servers']} servers,"
             f" util {spec['utilization']:.2f}"
             f"{', ha' if spec['ha'] else ''}"
             f"{', tenancy' if spec['tenancy'] else ''}"
             f" -> {'VIOLATION ' + ','.join(names) if names else 'ok'}")
        if not names:
            continue
        shrunk = shrink(spec, result, mutate=mutate, max_tests=max_shrink)
        artifact = make_artifact(spec, result, shrunk, mutate)
        echo(f"  shrunk {shrunk['events_before']} ->"
             f" {shrunk['events_after']} fault(s) in"
             f" {shrunk['tests']} test runs")
        entry = {"trial": trial, "violations": result["violations"],
                 "artifact": artifact}
        if artifact_dir is not None:
            entry["path"] = write_artifact(artifact, artifact_dir)
            echo(f"  artifact: {entry['path']}")
        found.append(entry)
    return {"trials": trials, "seed": seed, "mutate": mutate,
            "violating_trials": [f["trial"] for f in found],
            "found": found}
