"""repro.verify — cross-layer invariant monitors and chaos fuzzing.

Two halves:

* :mod:`repro.verify.invariants` — online monitors (clock monotonicity,
  energy conservation/monotonicity, exactly-once workflow lifecycle,
  breaker state-machine legality, HA epoch fencing, tenant budget and
  power-cap bounds) hooked through ``Environment.verify``. NULL by
  default: verification-off runs are bit-identical to the stored seed
  fingerprints.
* :mod:`repro.verify.fuzz` — the seeded chaos fuzzer behind
  ``repro fuzz``: samples random fault schedules + config draws, runs
  each trial with every invariant armed, and delta-debugs any violating
  schedule down to a minimal replayable JSON artifact.

Like the tracer and auditor in :mod:`repro.obs`, an active verifier is
installed globally so experiment modules can pick it up without
plumbing it through every ``run()`` signature.

NB: ``repro.verify.fuzz`` and ``repro.verify.mutate`` are deliberately
NOT imported here — they import the experiment harness, which imports
the sim kernel, which imports this package. The CLI imports them
lazily.
"""

from typing import Optional

from repro.verify.invariants import (
    BREAKER_STATES,
    LEGAL_BREAKER_TRANSITIONS,
    NULL_VERIFIER,
    NullVerifier,
    Verifier,
    Violation,
)

_ACTIVE: Optional[Verifier] = None


def install(verifier: Verifier) -> Verifier:
    """Make ``verifier`` the process-wide active verifier."""
    global _ACTIVE
    _ACTIVE = verifier
    return verifier


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[Verifier]:
    """The installed verifier, or None when verification is off."""
    return _ACTIVE


__all__ = [
    "BREAKER_STATES",
    "LEGAL_BREAKER_TRANSITIONS",
    "NULL_VERIFIER",
    "NullVerifier",
    "Verifier",
    "Violation",
    "install",
    "uninstall",
    "active",
]
