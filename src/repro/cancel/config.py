"""Configuration for the cancellation & retry-budget layer (repro.cancel).

Everything is opt-in: a :class:`CancelConfig` with both sections ``None``
(or no config at all) leaves every code path byte-identical to the
original platform. Like the guard layer, all decisions derived from these
knobs are pure functions of simulation time and counters — no random
draws — so armed runs stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def _require_finite(name: str, value: float) -> None:
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"{name} must be finite, got {value}")


@dataclass(frozen=True)
class DeadlineConfig:
    """Deadline propagation & cooperative cancellation.

    The doom line of a workflow is ``arrival + SLO + slack_s``: once the
    platform can prove an attempt cannot finish by then, running it any
    longer only burns joules. Each knob arms one cancel point.
    """

    #: Grace beyond the workflow SLO before work is declared doomed.
    slack_s: float = 0.0
    #: Drop queued jobs at dequeue when their remaining work cannot fit
    #: before the doom line.
    cancel_queued: bool = True
    #: Cancel hedged losers when the winner completes (instead of letting
    #: them run to completion as abandoned work).
    cancel_hedges: bool = True
    #: Cancel timed-out attempts when the frontend writes them off
    #: (instead of letting them run to completion as abandoned work).
    cancel_timeouts: bool = True
    #: Check the doom line at workflow stage boundaries and skip the
    #: remaining chain when it has already passed.
    check_stage_boundary: bool = True

    def __post_init__(self) -> None:
        _require_finite("slack_s", self.slack_s)
        if self.slack_s < 0:
            raise ValueError(f"slack_s must be >= 0, got {self.slack_s}")


@dataclass(frozen=True)
class RetryBudgetConfig:
    """A cluster-wide retry-token bucket layered under ReliabilityPolicy.

    Retries across the whole cluster are capped at ``ratio`` of the first
    attempts observed in the previous window (never below ``floor``), so
    per-invocation retry policies cannot compound into a retry storm.
    """

    #: Retries allowed per first-attempt (0.1 = retries <= 10% of load).
    ratio: float = 0.1
    #: Window over which first attempts are counted and the token pool is
    #: re-primed.
    window_s: float = 10.0
    #: Minimum tokens per window, so a near-idle cluster can still retry.
    floor: int = 3

    def __post_init__(self) -> None:
        _require_finite("ratio", self.ratio)
        _require_finite("window_s", self.window_s)
        if self.ratio <= 0:
            raise ValueError(f"ratio must be positive, got {self.ratio}")
        if self.window_s <= 0:
            raise ValueError(
                f"window_s must be positive, got {self.window_s}")
        if self.floor < 0:
            raise ValueError(f"floor must be >= 0, got {self.floor}")


@dataclass(frozen=True)
class CancelConfig:
    """Top-level opt-in switch for the cancellation layer.

    Each section arms one mechanism; a section left ``None`` keeps that
    mechanism's code paths byte-identical to the unarmed platform.
    """

    deadline: Optional[DeadlineConfig] = None
    retry_budget: Optional[RetryBudgetConfig] = None

    @classmethod
    def full(cls, **overrides) -> "CancelConfig":
        """Every mechanism armed with its defaults (test/demo helper)."""
        params = {
            "deadline": DeadlineConfig(),
            "retry_budget": RetryBudgetConfig(),
        }
        params.update(overrides)
        return cls(**params)
