"""Deadline-propagating cancellation & adaptive retry budgets.

Opt-in via :class:`CancelConfig` on :class:`ClusterConfig` (the guard /
HA pattern): with no config, every platform code path is byte-identical
to the unarmed tree. Armed, the layer kills doomed work before it burns
joules — hedged losers, timed-out attempts, queued jobs whose deadline
is already unmeetable, and workflow chains past their doom line — and
caps cluster-wide retries with a token budget so per-invocation retry
policies cannot compound into a retry storm (the metastable-failure
mode the ``retrystorm`` experiment demonstrates).
"""

from repro.cancel.budget import RetryBudget, RetryTokenPool
from repro.cancel.config import (
    CancelConfig,
    DeadlineConfig,
    RetryBudgetConfig,
)
from repro.cancel.runtime import CancelRuntime

__all__ = [
    "CancelConfig",
    "CancelRuntime",
    "DeadlineConfig",
    "RetryBudget",
    "RetryBudgetConfig",
    "RetryTokenPool",
]
