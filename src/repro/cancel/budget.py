"""Adaptive retry-token accounting (repro.cancel).

A :class:`RetryTokenPool` is a fixed-capacity bucket whose tokens are
always in exactly one of three states — available, spent, or refunded —
so ``available + spent + refunded == capacity`` holds at every instant
(the ``retry-budget`` verify invariant). A refunded token is *retired*
for the current window rather than returned to ``available``: a retry
that was granted but never dispatched still consumed window headroom,
and keeping it retired makes the audit trail conservative.

:class:`RetryBudget` re-primes a fresh pool every ``window_s`` (a lazy
tumbling window — rolled on access, so idle windows cost nothing), sizing
the new capacity to ``ratio`` of the first attempts counted in the window
just closed. All arithmetic is integer/derived from sim time; no random
draws, so armed runs stay deterministic.
"""

from __future__ import annotations

import math

from repro.cancel.config import RetryBudgetConfig


class RetryTokenPool:
    """One window's worth of retry tokens, conserving by construction."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.available = capacity
        self.spent = 0
        self.refunded = 0

    def grant(self) -> bool:
        """Move one token available → spent; False when none remain."""
        if self.available <= 0:
            return False
        self.available -= 1
        self.spent += 1
        return True

    def refund(self) -> None:
        """Move one token spent → refunded (retired, not reusable)."""
        if self.spent <= 0:
            raise RuntimeError("refund without a matching grant")
        self.spent -= 1
        self.refunded += 1

    def conserves(self) -> bool:
        """The three-state partition sums back to capacity."""
        return (self.available + self.spent + self.refunded == self.capacity
                and self.available >= 0 and self.spent >= 0
                and self.refunded >= 0)


class RetryBudget:
    """Cluster-wide adaptive retry budget over tumbling windows."""

    def __init__(self, config: RetryBudgetConfig, now: float = 0.0):
        self.config = config
        self.pool = RetryTokenPool(config.floor)
        self._window_end = now + config.window_s
        self._first_attempts = 0
        # Cumulative counters for metrics/verify (never reset).
        self.granted_total = 0
        self.denied_total = 0
        self.refunded_total = 0
        self.rolls = 0

    def _roll(self, now: float) -> None:
        """Advance past every window boundary ``now`` has crossed."""
        while now >= self._window_end:
            capacity = max(
                self.config.floor,
                int(math.ceil(self.config.ratio * self._first_attempts)))
            self.pool = RetryTokenPool(capacity)
            self._first_attempts = 0
            self._window_end += self.config.window_s
            self.rolls += 1

    def note_first_attempt(self, now: float) -> None:
        """Count one first attempt toward the next window's capacity."""
        self._roll(now)
        self._first_attempts += 1

    def try_grant(self, now: float) -> bool:
        """Spend one retry token, or deny when the window is exhausted."""
        self._roll(now)
        if self.pool.grant():
            self.granted_total += 1
            return True
        self.denied_total += 1
        return False

    def refund(self, now: float) -> None:
        """Retire a granted token whose retry never dispatched.

        If the window rolled since the grant, the fresh pool has no spent
        tokens to move — the old pool (token and all) was already retired
        wholesale, so only the cumulative counter advances.
        """
        self._roll(now)
        if self.pool.spent > 0:
            self.pool.refund()
        self.refunded_total += 1
