"""The per-cluster cancellation runtime: doom checks, kills, budgets.

One :class:`CancelRuntime` is created by a :class:`Cluster` whose config
carries a :class:`CancelConfig`, and installed as ``env.cancel`` (the
same pattern as ``env.guard``). Every instrumentation point in the
platform checks ``cancel is None`` first, so unarmed runs execute the
pre-cancel code byte-for-byte.

The runtime owns three concerns: deadline *doom* predicates (a job or
workflow is doomed once it provably cannot finish by its doom line),
the actual kill path (finding a job's pool across the cluster and
removing it there), and the cluster-wide retry budget. Every decision
is folded into :class:`MetricsCollector` counters and emitted as
``repro.obs`` instants/audit records.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro.cancel.budget import RetryBudget
from repro.cancel.config import CancelConfig
from repro.obs.prof import profiled

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.platform.job import Job

#: Frontend trace track for cancel decisions (matches reliability events).
FRONTEND_TRACK = "frontend"

#: Epsilon for doom-line comparisons (matches the platform's deadline
#: comparisons).
EPS = 1e-9


class CancelRuntime:
    """All armed cancellation mechanisms of one cluster."""

    def __init__(self, cluster: "Cluster", config: CancelConfig):
        self.cluster = cluster
        self.config = config
        self.env = cluster.env
        self.metrics = cluster.metrics
        self.deadline = config.deadline
        self.budget: Optional[RetryBudget] = (
            RetryBudget(config.retry_budget, now=cluster.env.now)
            if config.retry_budget is not None else None)
        #: Workflow uids declared doomed (stage skipped or every attempt
        #: of an invocation cancelled) — read by the workflow engine to
        #: trace ``doomed`` instead of ``failed``, and by the ledger to
        #: fill the ``doomed`` bucket.
        self.doomed_workflow_uids: Set[int] = set()
        #: Top of the frequency scale: the optimistic estimate used when
        #: reporting how many run-seconds a kill reclaimed.
        self._top_freq = cluster.config.scale.max

    def arm(self) -> None:
        """Nothing periodic to start; kept for runtime-pattern symmetry."""

    # ------------------------------------------------------------------
    # Doom lines (deadline propagation)
    # ------------------------------------------------------------------
    def doom_deadline(self, arrival_s: float, slo_s: float
                      ) -> Optional[float]:
        """The workflow's doom line: its SLO deadline plus slack.

        This is the deadline token each invocation of the chain carries;
        it is re-evaluated (against the stage's fresh remaining-work
        estimate) at every stage boundary and every dequeue.
        """
        if self.deadline is None:
            return None
        return arrival_s + slo_s + self.deadline.slack_s

    def tag_job(self, job: "Job", doom_deadline_s: Optional[float]) -> None:
        """Attach the doom token so node-level checks can see it."""
        if doom_deadline_s is not None and not job.is_prewarm:
            job.doom_deadline_s = doom_deadline_s

    def stage_doomed(self, doom_deadline_s: Optional[float]) -> bool:
        """True when the chain's doom line passed at a stage boundary."""
        return (self.deadline is not None
                and self.deadline.check_stage_boundary
                and doom_deadline_s is not None
                and self.env.now > doom_deadline_s + EPS)

    def retry_doomed(self, doom_deadline_s: Optional[float]) -> bool:
        """True when retrying past the doom line cannot help anymore."""
        return (self.deadline is not None
                and doom_deadline_s is not None
                and self.env.now > doom_deadline_s + EPS)

    @profiled("cancel")
    def dequeue_doomed(self, job: "Job", freq_ghz: float) -> bool:
        """Queued-job doom check at dispatch: can it still make its line?

        Uses the oracle remaining-run-seconds view at the pool frequency
        (block time is not counted, so the check is conservative — a job
        is only doomed when even uninterrupted execution cannot finish in
        time). Prewarm pseudo-jobs and jobs without a token never doom.
        """
        if self.deadline is None or not self.deadline.cancel_queued:
            return False
        token = getattr(job, "doom_deadline_s", None)
        if token is None or job.is_prewarm or job.cancelled:
            return False
        remaining = job.remaining_run_seconds(freq_ghz)
        return self.env.now + remaining > token + EPS

    # ------------------------------------------------------------------
    # The kill path
    # ------------------------------------------------------------------
    @property
    def cancels_hedges(self) -> bool:
        return self.deadline is not None and self.deadline.cancel_hedges

    @property
    def cancels_timeouts(self) -> bool:
        return self.deadline is not None and self.deadline.cancel_timeouts

    @profiled("cancel")
    def cancel_attempt(self, job: "Job", reason: str) -> bool:
        """Kill one in-flight attempt wherever it currently lives.

        Scans the cluster's nodes (deterministic order) for the pool or
        cold-start waiting room holding the job. Falls back to the old
        write-off semantics (``abandoned``: the attempt keeps executing)
        when no node can remove it — e.g. it completed in this very
        instant, or the node model exposes no pools.
        """
        if job.finished or job.aborted or job.cancelled:
            return False
        for node in self.cluster.nodes:
            if node.cancel_job(job):
                self._account_cancel(job, reason)
                return True
        job.abandoned = True
        return False

    def _account_cancel(self, job: "Job", reason: str) -> None:
        reclaimed = job.remaining_run_seconds(self._top_freq)
        self.metrics.cancelled_attempts += 1
        self.metrics.cancelled_energy_j += job.energy_j
        self.metrics.cancelled_reclaimed_s += reclaimed
        self.env.trace.instant(
            "cancel", FRONTEND_TRACK, job=job.job_id,
            function=job.function_name, reason=reason,
            charged_j=job.energy_j, reclaimed_s=reclaimed)

    def note_doomed_drop(self, job: "Job", pool: str) -> None:
        """Account one queued job dropped at dispatch (already removed)."""
        self._account_cancel(job, "doomed_queue")
        self.metrics.doomed_drops += 1
        self.env.trace.instant(
            "doomed_drop", FRONTEND_TRACK, job=job.job_id,
            function=job.function_name, pool=pool,
            doom_deadline_s=getattr(job, "doom_deadline_s", None))

    def note_workflow_doomed(self, benchmark: str, wf_uid: int,
                             stage_index: int, cause: str) -> None:
        """Declare one workflow doomed (its chain stops here)."""
        if wf_uid in self.doomed_workflow_uids:
            return
        self.doomed_workflow_uids.add(wf_uid)
        self.metrics.record_workflow_doomed(benchmark)
        self.env.trace.instant(
            "workflow_doomed", FRONTEND_TRACK, benchmark=benchmark,
            workflow=wf_uid, stage=stage_index, cause=cause)
        audit = self.env.audit
        if audit is not None:
            audit.record(
                "workflow_doomed", FRONTEND_TRACK,
                inputs={"benchmark": benchmark, "stage": stage_index,
                        "now": round(self.env.now, 6), "cause": cause},
                action={"doomed": True},
                alternatives=[{"continue": True,
                               "rejected": "the doom line already passed;"
                                           " remaining stages cannot meet"
                                           " the SLO"}],
                reason="deadline propagation: the workflow's doom line"
                       " passed before its chain finished",
                workflow_uid=wf_uid)

    def workflow_was_doomed(self, wf_uid: int) -> bool:
        return wf_uid in self.doomed_workflow_uids

    # ------------------------------------------------------------------
    # Retry budget (layered under ReliabilityPolicy)
    # ------------------------------------------------------------------
    def note_first_attempt(self) -> None:
        if self.budget is not None:
            self.budget.note_first_attempt(self.env.now)

    @profiled("cancel")
    def allow_retry(self, function: str, attempt: int) -> bool:
        """Spend a retry token; False = the cluster budget is exhausted."""
        if self.budget is None:
            return True
        if self.budget.try_grant(self.env.now):
            return True
        self.metrics.retry_budget_denials += 1
        pool = self.budget.pool
        self.env.trace.instant(
            "retry_budget_exhausted", FRONTEND_TRACK, function=function,
            attempt=attempt, capacity=pool.capacity, spent=pool.spent)
        audit = self.env.audit
        if audit is not None:
            audit.record(
                "retry_budget_exhausted", FRONTEND_TRACK,
                inputs={"function": function, "attempt": attempt,
                        "capacity": pool.capacity, "spent": pool.spent,
                        "refunded": pool.refunded},
                action={"retry": False},
                alternatives=[{"retry": True,
                               "rejected": "the cluster-wide retry-token"
                                           " window is spent"}],
                reason="adaptive retry budget: cluster retries are capped"
                       " at a ratio of first attempts per window")
        return False

    def refund_retry(self, function: str) -> None:
        """Retire a granted token whose retry never dispatched."""
        if self.budget is None:
            return
        self.budget.refund(self.env.now)
        self.metrics.retry_budget_refunds += 1
        self.env.trace.instant(
            "retry_budget_refund", FRONTEND_TRACK, function=function)
