"""Baseline+PowerCtrl: a Gemini-style DVFS layer on top of MXFaaS.

Per Section VII, this upper-bound comparison system:

* splits an application's SLO across functions *proportionally to their
  execution time at the highest frequency* (as Kraken/Fifer do);
* predicts each invocation's execution time at any frequency with 100 %
  accuracy (we read the invocation's ground-truth spec — a true oracle);
* assumes a *run-to-completion* model: a core is held through the
  invocation's I/O blocks, and queue-wait estimates include those blocks;
* re-programs the core to the chosen frequency at dispatch when it differs
  from the core's current one, paying the 10–20 ms sandboxed-userspace
  switch cost (functions live in containers and must cross the host/kernel
  boundary, Section III-4).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.partitioned import PartitionedNode
from repro.hardware.frequency import DvfsCostModel
from repro.hardware.server import Server
from repro.platform.job import Job
from repro.platform.metrics import MetricsCollector
from repro.platform.scheduler import CorePoolScheduler
from repro.platform.system import ClusterSystem, NodeSystem
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.applications import Workflow
from repro.workloads.model import FunctionModel


def proportional_deadlines(workflow: Workflow, arrival_s: float,
                           slo_s: float) -> Dict[str, float]:
    """Split an SLO proportionally to stage latency at the top frequency.

    Every function in a stage receives the stage's cumulative deadline
    (parallel members share it). Returns absolute deadlines.
    """
    if slo_s <= 0:
        raise ValueError(f"SLO must be positive: {slo_s}")
    stage_latencies = [stage.warm_latency(3.0) for stage in workflow.stages]
    total = sum(stage_latencies)
    deadlines: Dict[str, float] = {}
    elapsed = 0.0
    for stage, latency in zip(workflow.stages, stage_latencies):
        elapsed += slo_s * latency / total
        for fn in stage.functions:
            deadlines[fn.name] = arrival_s + elapsed
    return deadlines


class PowerCtrlNode(PartitionedNode):
    """MXFaaS node with the Gemini-style per-invocation DVFS layer."""

    switch_on_idle = False  # run-to-completion
    per_job_frequency = True

    def __init__(self, env: Environment, server: Server,
                 metrics: MetricsCollector, rng: RngRegistry):
        super().__init__(env, server, metrics, rng)
        self._dvfs_cost = DvfsCostModel(rng=rng.stream("powerctrl/dvfs"))

    def switch_cost(self) -> float:
        return self._dvfs_cost.sandbox_cost()

    def choose_frequency(self, pool: CorePoolScheduler, job: Job,
                         fn_model: FunctionModel) -> None:
        """Lowest frequency whose oracle-predicted finish meets the deadline.

        Run-to-completion queueing: the wait behind the queue includes the
        blocked time of the jobs ahead, so jobs register their full service
        time (run + block) in the EWT counter.
        """
        scale = self.server.scale
        chosen = scale.max
        if job.deadline_s is not None:
            wait = pool.estimated_queue_seconds()
            budget = job.deadline_s - self.env.now - wait
            for freq in scale.levels:  # ascending: first fit is the lowest
                service = (job.remaining_run_seconds(freq)
                           + job.spec.total_block_seconds)
                if service <= budget:
                    chosen = freq
                    break
        job.chosen_freq_ghz = chosen
        job.registered_run_seconds = (
            job.remaining_run_seconds(chosen)
            + job.spec.total_block_seconds)
        if self.env.trace.enabled:
            self.env.trace.instant(
                "freq_choice", pool.name, job=job.job_id,
                function=job.function_name, chosen_ghz=chosen,
                deadline_s=job.deadline_s)


class PowerCtrlSystem(ClusterSystem):
    """The paper's Baseline+PowerCtrl."""

    name = "Baseline+PowerCtrl"

    def make_node(self, env: Environment, server: Server,
                  metrics: MetricsCollector, rng: RngRegistry) -> NodeSystem:
        return PowerCtrlNode(env, server, metrics, rng)

    def function_deadlines(self, workflow: Workflow, arrival_s: float,
                           slo_s: float) -> Optional[Dict[str, float]]:
        return proportional_deadlines(workflow, arrival_s, slo_s)
