"""The two comparison systems of the evaluation (Section VII).

* :class:`~repro.baselines.mxfaas.BaselineSystem` — the state-of-the-art
  MXFaaS platform: each function container owns a set of cores, invocations
  of a function run only on its own cores (context-switch-on-idle within
  the function), and every core runs at the highest frequency.
* :class:`~repro.baselines.powerctrl.PowerCtrlSystem` — Baseline plus a
  Gemini-style energy-management layer: per-invocation frequency selection
  with 100 %-accurate (oracle) execution-time prediction, a
  run-to-completion execution model, proportional SLO splitting, and
  sandboxed-userspace frequency-switch costs.
"""

from repro.baselines.mxfaas import BaselineSystem
from repro.baselines.partitioned import PartitionedNode
from repro.baselines.powerctrl import PowerCtrlSystem, proportional_deadlines

__all__ = [
    "BaselineSystem",
    "PartitionedNode",
    "PowerCtrlSystem",
    "proportional_deadlines",
]
