"""Baseline: the MXFaaS serverless platform (no energy management).

Per Section VII: per-function core ownership, invocations multiplexed on
the function's own cores (context-switch-on-idle), every core pinned at the
highest frequency, and no deadlines — requests are simply served as fast as
possible.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.partitioned import PartitionedNode
from repro.hardware.server import Server
from repro.platform.metrics import MetricsCollector
from repro.platform.system import ClusterSystem, NodeSystem
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.applications import Workflow


class BaselineNode(PartitionedNode):
    """MXFaaS node: switch-on-idle at the top frequency."""

    switch_on_idle = True
    per_job_frequency = False


class BaselineSystem(ClusterSystem):
    """The paper's Baseline."""

    name = "Baseline"

    def make_node(self, env: Environment, server: Server,
                  metrics: MetricsCollector, rng: RngRegistry) -> NodeSystem:
        return BaselineNode(env, server, metrics, rng)

    def function_deadlines(self, workflow: Workflow, arrival_s: float,
                           slo_s: float) -> Optional[Dict[str, float]]:
        """Baseline ignores SLOs: everything runs flat out."""
        return None
