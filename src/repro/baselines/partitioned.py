"""The MXFaaS core-ownership node model shared by both baselines.

MXFaaS (the paper's Baseline) assigns a set of cores to each function
container; invocations of a function are scheduled only on cores owned by
that function. We re-partition ownership periodically in proportion to each
function's outstanding work, with every active function keeping at least
one core — the resource model the paper describes in Section VII.

Subclass hooks decide the scheduling mode (context-switch-on-idle vs
run-to-completion) and the per-invocation frequency (always-max vs the
PowerCtrl chooser).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware.core import Core
from repro.hardware.server import Server
from repro.platform.job import Job
from repro.platform.metrics import MetricsCollector
from repro.platform.scheduler import CorePoolScheduler
from repro.platform.system import NodeSystem
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.model import FunctionModel
from repro.workloads.spec import InvocationSpec

#: How often core ownership is re-balanced across function containers.
REPARTITION_INTERVAL_S = 1.0
#: A pool with no work for this long gives up its cores.
POOL_IDLE_TIMEOUT_S = 10.0


class PartitionedNode(NodeSystem):
    """A node whose cores are partitioned among function containers."""

    #: Subclass policy: context-switch when an invocation blocks?
    switch_on_idle = True
    #: Subclass policy: honour each job's ``chosen_freq_ghz``?
    per_job_frequency = False

    def __init__(self, env: Environment, server: Server,
                 metrics: MetricsCollector, rng: RngRegistry,
                 repartition_interval_s: float = REPARTITION_INTERVAL_S):
        super().__init__(env, server, metrics, rng)
        if repartition_interval_s <= 0:
            raise ValueError("repartition interval must be positive")
        self._free_cores: List[Core] = list(server.cores)
        self._pools: Dict[str, CorePoolScheduler] = {}
        self._last_activity: Dict[str, float] = {}
        self.repartition_interval_s = repartition_interval_s
        env.process(self._repartition_loop(),
                    name=f"repartition-{server.server_id}")

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def choose_frequency(self, pool: CorePoolScheduler, job: Job,
                         fn_model: FunctionModel) -> None:
        """Set ``job.chosen_freq_ghz`` / ``registered_run_seconds``.

        The plain Baseline runs everything at the top frequency.
        """
        job.chosen_freq_ghz = self.server.scale.max
        job.registered_run_seconds = job.remaining_run_seconds(
            self.server.scale.max)

    def switch_cost(self) -> float:
        """Cost of re-programming a core's frequency at dispatch."""
        return 0.0

    # ------------------------------------------------------------------
    # NodeSystem interface
    # ------------------------------------------------------------------
    def submit(self, fn_model: FunctionModel, spec: InvocationSpec,
               deadline_s: Optional[float], benchmark: str,
               seniority_time_s: Optional[float] = None) -> Job:
        job = Job(self.env, spec, benchmark, arrival_s=self.env.now,
                  deadline_s=deadline_s, seniority_time_s=seniority_time_s)
        self._submit_with_container(fn_model, job, f"cold/{fn_model.name}",
                                    self._enqueue)
        return job

    @property
    def outstanding(self) -> int:
        return sum(pool.load for pool in self._pools.values())

    def iter_pools(self) -> List[CorePoolScheduler]:
        """Live per-function pools (observability)."""
        return list(self._pools.values())

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def _enqueue(self, fn_model: FunctionModel, job: Job) -> None:
        pool = self._pool_for(fn_model.name)
        self._last_activity[fn_model.name] = self.env.now
        if pool.n_cores == 0:
            # A just-(re)created pool must not wait for the next periodic
            # re-balance to receive cores.
            self._rebalance()
        self.choose_frequency(pool, job, fn_model)
        pool.submit(job)

    def _pool_for(self, function_name: str) -> CorePoolScheduler:
        if function_name not in self._pools:
            self._pools[function_name] = CorePoolScheduler(
                self.env, [], frequency_ghz=self.server.scale.max,
                name=f"{function_name}@{self.server.server_id}",
                switch_on_idle=self.switch_on_idle,
                per_job_frequency=self.per_job_frequency,
                switch_cost=self.switch_cost,
                on_complete=self._on_job_complete,
                on_core_released=self._free_cores.append,
                cost_scale=self.dvfs_cost_scale,
                block_latency=self.rpc_latency_scale)
            self._rebalance()
        return self._pools[function_name]

    def _on_job_complete(self, job: Job) -> None:
        self._last_activity[job.function_name] = self.env.now
        self.metrics.record_job(job)

    def _repartition_loop(self):
        while True:
            yield self.env.timeout(self.repartition_interval_s)
            if self.down:
                continue
            self._retire_idle_pools()
            self._rebalance()

    # ------------------------------------------------------------------
    # Crash recovery (repro.faults)
    # ------------------------------------------------------------------
    def _abort_all_jobs(self) -> List[Job]:
        lost: List[Job] = []
        for pool in self._pools.values():
            lost.extend(pool.abort_all())
        return lost

    def _rebuild(self) -> None:
        """Reboot with no ownership knowledge: all cores free, no pools.

        ``abort_all`` left every core idle, so the whole machine returns
        to the free list; pools are re-created on demand as invocations
        arrive, exactly like a freshly booted node.
        """
        self._pools = {}
        self._last_activity = {}
        self._free_cores = list(self.server.cores)

    # ------------------------------------------------------------------
    # Guard hooks (repro.guard)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Optional[Dict[str, object]]:
        """Snapshot core ownership: which functions own pools here."""
        return {
            "functions": sorted(self._pools),
            "last_activity": dict(self._last_activity),
        }

    def restore_state(self, state: Dict[str, object]) -> bool:
        """Re-create the checkpointed pools so ownership resumes warm."""
        for name in state.get("functions", ()):
            self._pool_for(name)
        activity = state.get("last_activity") or {}
        for name, seen_s in activity.items():
            self._last_activity[name] = float(seen_s)
        return True

    def _retire_idle_pools(self) -> None:
        cutoff = self.env.now - POOL_IDLE_TIMEOUT_S
        for name in list(self._pools):
            pool = self._pools[name]
            if (pool.outstanding == 0
                    and self._last_activity.get(name, 0.0) < cutoff):
                while True:
                    core = pool.release_idle_core()
                    if core is None:
                        break
                    self._free_cores.append(core)
                del self._pools[name]

    def _rebalance(self) -> None:
        """Re-apportion cores proportionally to each pool's live load.

        Largest-remainder apportionment on ``1 + load`` weights; busy pools
        are then guaranteed at least one core (stolen from the richest
        target) so a heavy pool can never be starved by a crowd of idle
        ones.
        """
        if not self._pools:
            return
        total_cores = self.server.n_cores
        weights = {name: 1.0 + pool.load
                   for name, pool in self._pools.items()}
        weight_sum = sum(weights.values())
        exact = {name: total_cores * weight / weight_sum
                 for name, weight in weights.items()}
        targets: Dict[str, int] = {name: int(e) for name, e in exact.items()}
        leftover = total_cores - sum(targets.values())
        by_remainder = sorted(exact, key=lambda n: exact[n] - targets[n],
                              reverse=True)
        for name in by_remainder:
            if leftover <= 0:
                break
            targets[name] += 1
            leftover -= 1
        for name, pool in self._pools.items():
            if targets[name] == 0 and pool.load > 0:
                donor = max(targets, key=targets.get)
                if targets[donor] > 1:
                    targets[donor] -= 1
                    targets[name] = 1

        # Shrink over-provisioned pools first (idle cores now, busy later).
        for name, pool in self._pools.items():
            while pool.n_cores > targets[name]:
                core = pool.release_idle_core()
                if core is None:
                    if not pool.request_core_removal():
                        break
                    break  # busy cores leave when their job finishes
                self._free_cores.append(core)
        # Then grow under-provisioned pools from the free list.
        for name, pool in self._pools.items():
            while pool.n_cores < targets[name] and self._free_cores:
                pool.add_core(self._free_cores.pop())
        if self.env.trace.enabled:
            self.env.trace.instant(
                "repartition", self.track, pools=len(self._pools),
                targets=dict(sorted(targets.items())),
                free=len(self._free_cores))
