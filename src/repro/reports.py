"""Plot-free rendering helpers: ASCII bar charts, histograms, sparklines.

The experiment harnesses print fixed-width tables; these helpers render
the same data as terminal graphics for the figures where shape matters
more than digits (frequency distributions, timelines, latency curves).
No plotting dependency is needed anywhere in the library.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Eighth-block characters for sparklines.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def bar_chart(values: Dict[str, float], width: int = 40,
              unit: str = "") -> str:
    """Horizontal bar chart of label → value (values must be >= 0)."""
    if not values:
        raise ValueError("nothing to chart")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart needs non-negative values")
    peak = max(values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    for label, value in values.items():
        filled = int(round(width * value / peak))
        bar = "█" * filled
        lines.append(f"{str(label).rjust(label_width)} |{bar.ljust(width)}"
                     f" {value:.4g}{unit}")
    return "\n".join(lines)


def histogram(samples: Sequence[float], bins: int = 10,
              width: int = 40) -> str:
    """ASCII histogram of a sample set."""
    if len(samples) == 0:
        raise ValueError("nothing to chart")
    if bins < 1:
        raise ValueError("need at least one bin")
    lo, hi = min(samples), max(samples)
    if hi == lo:
        hi = lo + 1.0
    step = (hi - lo) / bins
    counts = [0] * bins
    for sample in samples:
        index = min(int((sample - lo) / step), bins - 1)
        counts[index] += 1
    labels = {
        f"[{lo + i * step:.3g}, {lo + (i + 1) * step:.3g})": float(count)
        for i, count in enumerate(counts)
    }
    return bar_chart(labels, width=width)


def sparkline(values: Sequence[float],
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line sparkline (8 vertical levels)."""
    if len(values) == 0:
        raise ValueError("nothing to chart")
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return _SPARK_LEVELS[4] * len(values)
    span = hi - lo
    chars = []
    for value in values:
        level = (value - lo) / span
        index = min(len(_SPARK_LEVELS) - 1,
                    max(0, int(round(level * (len(_SPARK_LEVELS) - 1)))))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def timeline(samples: Sequence[Tuple[float, float]], width: int = 60,
             label: str = "") -> str:
    """Render a (time, value) series as a labelled sparkline with range."""
    if len(samples) == 0:
        raise ValueError("nothing to chart")
    values = [v for _, v in samples]
    if len(values) > width:
        # Decimate evenly to the requested width.
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    spark = sparkline(values)
    lo, hi = min(v for _, v in samples), max(v for _, v in samples)
    prefix = f"{label} " if label else ""
    return (f"{prefix}[{samples[0][0]:.4g}s..{samples[-1][0]:.4g}s]"
            f" {spark} (min {lo:.4g}, max {hi:.4g})")


def comparison_table(rows: List[Dict[str, object]], key_column: str,
                     value_columns: Sequence[str], width: int = 30) -> str:
    """Bars per row for several value columns side by side.

    Handy for the normalized-energy figures: one bar group per benchmark,
    one bar per system.
    """
    if not rows:
        raise ValueError("nothing to chart")
    lines = []
    numeric = [float(row[c]) for row in rows for c in value_columns
               if isinstance(row.get(c), (int, float))]
    peak = max(numeric) if numeric else 1.0
    peak = peak or 1.0
    col_width = max(len(c) for c in value_columns)
    for row in rows:
        lines.append(str(row[key_column]))
        for column in value_columns:
            value = row.get(column)
            if not isinstance(value, (int, float)):
                continue
            filled = int(round(width * float(value) / peak))
            lines.append(f"  {column.rjust(col_width)} "
                         f"|{('█' * filled).ljust(width)} {value:.3g}")
    return "\n".join(lines)
