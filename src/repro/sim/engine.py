"""The event loop (clock + heap) of the discrete-event kernel."""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Sequence, Tuple

from repro.obs.prof import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER
from repro.verify.invariants import NULL_VERIFIER
from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Execution environment: simulation clock plus an ordered event heap.

    Events at equal timestamps fire ordered by (priority, sequence number),
    which makes runs fully deterministic.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Observability hook (repro.obs). The shared null tracer makes
        #: every instrumentation point a no-op; ``Tracer.bind(env)``
        #: swaps in a recording tracer stamped with this clock.
        self.trace = NULL_TRACER
        #: Degradation hook (repro.guard). None keeps every guard
        #: instrumentation point on the pre-guard code path; a cluster
        #: built with a GuardConfig installs its GuardRuntime here.
        self.guard = None
        #: Link model hook (repro.ha). None means every simulated message
        #: always delivers (the pre-HA code path); a cluster built with an
        #: HAConfig installs a LinkTable here, which partition faults cut
        #: and heal.
        self.links = None
        #: High-availability hook (repro.ha). None keeps every HA
        #: instrumentation point (membership-aware dispatch, lease
        #: fencing, re-dispatch) on the pre-HA code path.
        self.ha = None
        #: Decision audit hook (repro.obs.audit). None means control-plane
        #: decision points skip building audit records entirely;
        #: ``AuditLog.bind(env)`` installs a recording log here.
        self.audit = None
        #: Multi-tenancy hook (repro.tenancy). None keeps budget
        #: enforcement, the power-cap governor, and frequency/core
        #: clamps on the pre-tenancy code path; a cluster built with a
        #: TenancyConfig installs its TenancyRuntime here.
        self.tenancy = None
        #: Cancellation hook (repro.cancel). None keeps doom checks,
        #: cooperative cancellation, and the retry budget on the
        #: pre-cancel code path; a cluster built with a CancelConfig
        #: installs its CancelRuntime here.
        self.cancel = None
        #: Self-profiling hook (repro.obs.prof). The shared null profiler
        #: makes the kernel-counter and scoped-timer points no-ops;
        #: ``Profiler.bind(env)`` swaps in a recording profiler. A bound
        #: profiler reads only the host wall-clock — never simulation
        #: state — so profiled runs stay bit-identical to the seed.
        self.prof = NULL_PROFILER
        #: Invariant-monitor hook (repro.verify). The shared null
        #: verifier makes every check point a no-op;
        #: ``Verifier.bind(env)`` swaps in a recording verifier. A bound
        #: verifier only reads simulation state, so verified runs stay
        #: bit-identical to the seed.
        self.verify = NULL_VERIFIER

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def active_process_target(self) -> Optional[Event]:
        """The active process's wait target (kernel internal)."""
        if self._active_process is None:
            return None
        return self._active_process._target

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event for manual triggering."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Sequence[Event]) -> AllOf:
        """Event that fires when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Sequence[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and stepping
    # ------------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Queue a triggered event to be processed after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))
        if self.prof.enabled:
            self.prof.note_push(len(self._queue))

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` if the heap is empty."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        verify = self.verify
        if verify.enabled:
            verify.on_step(self._now)

        callbacks, event.callbacks = event.callbacks, None
        prof = self.prof
        if prof.enabled:
            prof.note_event(type(event).__name__, len(callbacks))
            prof.enter("kernel.dispatch")
            try:
                for callback in callbacks:
                    callback(event)
            finally:
                prof.exit("kernel.dispatch")
        else:
            for callback in callbacks:
                callback(event)

        if not event._ok and not event._defused:
            # An event failed and nobody was listening: surface the error.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given the clock is left exactly at ``until`` even
        if the next event lies beyond it.
        """
        if until is not None:
            until = float(until)
            if until < self._now:
                raise ValueError(
                    f"until={until} lies in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
