"""Priority-aware resources for the discrete-event kernel.

:class:`PriorityResource` grants waiting requests lowest-priority-value
first (ties FIFO); :class:`PreemptiveResource` additionally lets a
higher-priority request evict the lowest-priority current user, whose
owning process receives an :class:`~repro.sim.events.Interrupt` carrying a
:class:`Preempted` cause.

The serverless platform uses its own scheduler (it needs EWT counters and
per-job frequencies), but these primitives complete the kernel for
standalone use and are exercised by the test-suite.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment
    from repro.sim.process import Process


@dataclass(frozen=True)
class Preempted:
    """Interrupt cause delivered to an evicted resource user."""

    by: "PriorityRequest"
    usage_since: float


class PriorityRequest(Event):
    """A prioritised claim on a :class:`PriorityResource` slot."""

    _ids = itertools.count()

    def __init__(self, resource: "PriorityResource", priority: int,
                 preempt: bool = True):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.preempt = preempt
        self.order = next(self._ids)
        #: The process that issued the request (eviction target).
        self.owner: Optional["Process"] = resource.env.active_process
        self.granted_at: Optional[float] = None
        resource._request(self)

    @property
    def sort_key(self) -> Tuple[int, int]:
        return (self.priority, self.order)

    def __enter__(self) -> "PriorityRequest":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class PriorityResource:
    """A capacity-limited resource whose queue is priority-ordered.

    Lower ``priority`` values are more important (simpy convention).
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[PriorityRequest] = []
        self._waiting: List[Tuple[Tuple[int, int], PriorityRequest]] = []

    @property
    def count(self) -> int:
        return len(self.users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0,
                preempt: bool = True) -> PriorityRequest:
        return PriorityRequest(self, priority, preempt)

    def release(self, request: PriorityRequest) -> None:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            self._waiting = [(key, r) for key, r in self._waiting
                             if r is not request]
            heapq.heapify(self._waiting)

    def _request(self, request: PriorityRequest) -> None:
        if len(self.users) < self.capacity:
            self._grant(request)
            return
        if not self._try_preempt(request):
            heapq.heappush(self._waiting, (request.sort_key, request))

    def _try_preempt(self, request: PriorityRequest) -> bool:
        """Hook for subclasses; the base resource never preempts."""
        return False

    def _grant(self, request: PriorityRequest) -> None:
        self.users.append(request)
        request.granted_at = self.env.now
        request.succeed()

    def _grant_next(self) -> None:
        while self._waiting and len(self.users) < self.capacity:
            _, nxt = heapq.heappop(self._waiting)
            self._grant(nxt)


class PreemptiveResource(PriorityResource):
    """A priority resource where important requests evict lesser users."""

    def _try_preempt(self, request: PriorityRequest) -> bool:
        if not request.preempt or not self.users:
            return False
        victim = max(self.users, key=lambda r: r.sort_key)
        if victim.sort_key <= request.sort_key:
            return False  # nobody less important than the newcomer
        self.users.remove(victim)
        if victim.owner is not None and victim.owner.is_alive:
            victim.owner.interrupt(
                Preempted(by=request,
                          usage_since=victim.granted_at
                          if victim.granted_at is not None else self.env.now))
        self._grant(request)
        return True
