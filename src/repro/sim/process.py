"""Generator-based processes for the discrete-event kernel.

A process wraps a Python generator. The generator yields
:class:`~repro.sim.events.Event` objects; the process sleeps until the
yielded event triggers, then resumes with the event's value (or the event's
exception thrown in, for failed events). A process is itself an event that
triggers when the generator returns (success, with the return value) or
raises (failure).

Interruption — used throughout the scheduler code for preemption — throws
:class:`~repro.sim.events.Interrupt` into the generator at its current yield
point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import URGENT, Event, Initialize, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Process(Event):
    """A running coroutine; also an event that fires on completion."""

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any],
                 name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None while it is
        #: executing or before it starts).
        self._target: Optional[Event] = Initialize(env, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process({self.name}) at t={self.env.now:.6f}>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        The interrupted process stops waiting on its current target (the
        target stays valid and may be re-yielded). Interrupting a finished
        process is an error; interrupting a process twice before it runs
        queues both interrupts in order.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated; cannot interrupt")
        if self._target is self.env.active_process_target():
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome (kernel internal)."""
        self.env._active_process = self
        while True:
            # Detach from the previous target: if the event that woke us is
            # not our target (an interrupt), remove ourselves from the
            # target's callback list so a later trigger does not double-fire.
            if (self._target is not None and self._target is not event
                    and self._target.callbacks is not None
                    and self._resume in self._target.callbacks):
                self._target.callbacks.remove(self._resume)
            self._target = None

            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env.schedule(self)
                break
            except BaseException as error:
                self._ok = False
                self._value = error
                self.env.schedule(self)
                break

            if not isinstance(next_event, Event):
                error = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}")
                self._generator.throw(error)
                continue

            if next_event.processed:
                # Already-processed events resume the process without
                # yielding control back to the event loop.
                event = next_event
                continue

            self._target = next_event
            next_event.callbacks.append(self._resume)
            break

        self.env._active_process = None
