"""Discrete-event simulation kernel.

A small, deterministic, simpy-like engine built from scratch:

* :class:`~repro.sim.engine.Environment` — the event loop and clock.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timeout` —
  one-shot occurrences processes can wait on.
* :class:`~repro.sim.process.Process` — a generator-based coroutine that
  yields events; supports interruption (used for preemptive scheduling).
* :class:`~repro.sim.resources.Resource` / :class:`~repro.sim.resources.Store`
  — FIFO capacity-limited resources and object stores.
* :class:`~repro.sim.rng.RngRegistry` — named, reproducible random streams.

Determinism contract: events scheduled for the same timestamp fire in
scheduling order (a monotonically increasing sequence number breaks ties),
and all randomness is drawn from named seeded streams, so a simulation with
the same seed replays identically.
"""

from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.priority import PreemptiveResource, PriorityResource
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "PreemptiveResource",
    "PriorityResource",
    "Process",
    "Resource",
    "RngRegistry",
    "Store",
    "Timeout",
]
