"""Capacity-limited resources and object stores.

These are the classic simpy-style synchronisation primitives. The platform
code mostly uses bespoke schedulers (the FPS needs preemption semantics the
generic resource does not offer), but containers, storage backends, and the
tests lean on these.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so that the slot is always released::

        with resource.request() as req:
            yield req
            ...
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """A FIFO resource with fixed integer capacity."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of granted (in-use) slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the claim is granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a slot. Releasing an ungranted request cancels it."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            self._cancel(request)

    def _request(self, request: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.append(request)
            request.succeed()
        else:
            self._waiting.append(request)

    def _cancel(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed()


class StoreGet(Event):
    """A pending retrieval from a :class:`Store`."""


class StorePut(Event):
    """A pending insertion into a :class:`Store`."""


class Store:
    """A FIFO store of arbitrary items with optional bounded capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the event fires once there is room."""
        event = StorePut(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> StoreGet:
        """Remove the oldest item; the event's value is the item."""
        event = StoreGet(self.env)
        if self.items:
            event.succeed(self.items.popleft())
            self._serve_putters()
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            self._getters.popleft().succeed(self.items.popleft())

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()
            self._serve_getters()
