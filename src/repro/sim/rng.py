"""Named, reproducible random streams.

All stochastic behaviour in the simulator (arrival processes, input
generators, RPC latencies, ...) draws from streams obtained here, keyed by a
stable string name, so that

* a run with the same root seed replays exactly, and
* adding a new consumer of randomness does not perturb existing streams
  (each name derives its own independent seed).
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


def stable_hash(name: str) -> int:
    """A process-stable 32-bit hash of a string (CRC-32).

    Python's built-in ``hash`` is salted per process, so it cannot be used
    to derive reproducible seeds.
    """
    return zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """Factory of independent named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator (its
        state advances across calls), which is what consumers that draw
        incrementally want.
        """
        if name not in self._streams:
            seq = np.random.SeedSequence([self.seed, stable_hash(name)])
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` with a pristine state."""
        seq = np.random.SeedSequence([self.seed, stable_hash(name)])
        return np.random.default_rng(seq)

    def spawn(self, offset: int) -> "RngRegistry":
        """Derive a registry with a related but distinct root seed.

        Used by repetition harnesses: replicate ``i`` simulates with
        ``registry.spawn(i)``.
        """
        return RngRegistry(seed=(self.seed * 1_000_003 + offset) & 0x7FFFFFFF)
