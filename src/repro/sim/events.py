"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence: it starts *untriggered*, is
*triggered* (succeed or fail) exactly once, and is later *processed* by the
environment, at which point its callbacks run. Processes wait on events by
yielding them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Environment

#: Scheduling priorities. URGENT events (interrupts, immediate resumptions)
#: at a timestamp fire before NORMAL events at the same timestamp.
URGENT = 0
NORMAL = 1

_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: untriggered -> triggered (``succeed``/``fail``) -> processed
    (callbacks invoked by the environment). Callbacks are plain callables
    receiving the event itself.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure's exception was delivered to someone; an
        #: undelivered failure is re-raised at the end of the run so that
        #: errors never pass silently.
        self._defused = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"

    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded. Only valid once triggered."""
        if not self.triggered:
            raise RuntimeError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's payload (or the exception, for failed events)."""
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see the exception."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=NORMAL)
        return self


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, priority=NORMAL, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    def __init__(self, env: "Environment", process: Any):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=URGENT)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    def __init__(self, env: "Environment", events: Sequence[Event]):
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must belong to one environment")
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only *processed* events count as outcomes: a Timeout carries its
        # value from construction (it is "triggered" early) but has not
        # happened until the event loop processes it.
        return {
            event: event.value
            for event in self._events
            if event.processed and event.ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every constituent event has succeeded.

    Its value maps each event to its value. Fails as soon as any
    constituent fails.
    """

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when at least one constituent event has succeeded."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self.succeed(self._collect())
