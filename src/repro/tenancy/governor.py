"""The cluster power-cap control loop.

Every ``period_s`` the :class:`PowerCapGovernor` compares the metered
cluster draw (the sum of every server's instantaneous
:meth:`~repro.hardware.server.Server.power_snapshot_w`) against the
active cap and moves one step along a fixed actuation ladder:

* steps ``1 .. len(levels)-1`` lower the cluster-wide **frequency
  ceiling** one DVFS level at a time (eco-freq's cheapest knob — lower
  frequency is also lower energy per operation under the paper's power
  model);
* further steps shrink the **usable core fraction** by ``core_step``
  per tick down to ``min_core_fraction`` (pool shrinking, applied by
  the elastic node controllers at their next refresh).

Draw under ``release_fraction * cap`` releases one step per tick in the
reverse order, giving the loop hysteresis. The ceiling acts through the
existing controllers: pools above the ceiling are retuned down through
the kernel DVFS path, dispatch frequency choices are clamped, and pool
sizing folds demand above the ceiling into the ceiling level.

Every decision is a pure function of simulation time and the metered
draw, so capped runs are deterministic; each actuation change emits a
``power_cap_step`` trace instant and audit record stamped with the
monotonically increasing **cap epoch**.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.tenancy.config import PowerCapConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster

#: Frontend trace track for governor decisions (matches guard events).
FRONTEND_TRACK = "frontend"


class PowerCapGovernor:
    """Keeps the metered cluster draw under a (time-varying) watt cap."""

    def __init__(self, cluster: "Cluster", config: PowerCapConfig):
        self.cluster = cluster
        self.config = config
        self.env = cluster.env
        self.scale = cluster.config.scale
        #: Actuation depth: 0 = uncapped behaviour.
        self.steps = 0
        #: Monotonic epoch, bumped on every actuation or cap change.
        self.epoch = 0
        #: The cap the last tick enforced (schedule-change detection).
        self._active_cap_w = config.cap_at(0.0)
        self._stamp_servers()

    # ------------------------------------------------------------------
    # Ladder geometry
    # ------------------------------------------------------------------
    @property
    def _freq_steps(self) -> int:
        return len(self.scale.levels) - 1

    @property
    def _core_steps(self) -> int:
        span = 1.0 - self.config.min_core_fraction
        return int(math.ceil(span / self.config.core_step - 1e-9))

    @property
    def max_steps(self) -> int:
        return self._freq_steps + self._core_steps

    def freq_ceiling_ghz(self) -> Optional[float]:
        """The current cluster-wide frequency ceiling (None = uncapped)."""
        if self.steps <= 0:
            return None
        index = len(self.scale.levels) - 1 - min(self.steps,
                                                 self._freq_steps)
        return self.scale.levels[index]

    def core_fraction(self) -> float:
        """The usable fraction of each server's cores (1.0 = all)."""
        extra = max(0, self.steps - self._freq_steps)
        if extra <= 0:
            return 1.0
        return max(self.config.min_core_fraction,
                   1.0 - extra * self.config.core_step)

    def clamp(self, freq_ghz: Optional[float]) -> Optional[float]:
        """Clamp one frequency choice to the active ceiling."""
        ceiling = self.freq_ceiling_ghz()
        if ceiling is None or freq_ghz is None:
            return freq_ghz
        return min(freq_ghz, ceiling)

    def capped_cores(self, n_cores: int) -> int:
        """Usable cores out of ``n_cores`` under the active fraction."""
        fraction = self.core_fraction()
        if fraction >= 1.0:
            return n_cores
        return max(1, int(n_cores * fraction))

    # ------------------------------------------------------------------
    # The control loop body (driven by TenancyRuntime's process)
    # ------------------------------------------------------------------
    def draw_w(self) -> float:
        """Instantaneous metered cluster draw, watts."""
        return sum(server.power_snapshot_w()
                   for server in self.cluster.servers)

    def cap_w(self) -> float:
        """The active cap at the current simulation time."""
        return self.config.cap_at(self.env.now)

    def tick(self) -> None:
        """One governor decision: tighten, release, or hold."""
        cap = self.cap_w()
        if cap != self._active_cap_w:
            self._active_cap_w = cap
            self.epoch += 1
            self._stamp_servers()
        draw = self.draw_w()
        if draw > cap and self.steps < self.max_steps:
            self._actuate(self.steps + 1, draw, cap, "tighten")
        elif (draw < self.config.release_fraction * cap
              and self.steps > 0):
            self._actuate(self.steps - 1, draw, cap, "release")

    def _actuate(self, new_steps: int, draw: float, cap: float,
                 direction: str) -> None:
        prev_steps = self.steps
        prev_ceiling = self.freq_ceiling_ghz()
        prev_fraction = self.core_fraction()
        self.steps = new_steps
        self.epoch += 1
        ceiling = self.freq_ceiling_ghz()
        fraction = self.core_fraction()
        self._apply_ceiling(ceiling)
        metrics = self.cluster.metrics
        metrics.power_cap_steps += 1
        if direction == "tighten":
            metrics.power_cap_tightens += 1
        else:
            metrics.power_cap_releases += 1
        self.env.trace.instant(
            "power_cap_step", FRONTEND_TRACK,
            direction=direction, steps=self.steps, epoch=self.epoch,
            draw_w=round(draw, 6), cap_w=round(cap, 6),
            freq_ceiling_ghz=ceiling, core_fraction=round(fraction, 6))
        audit = self.env.audit
        if audit is not None:
            audit.record(
                "power_cap_step", FRONTEND_TRACK,
                inputs={"draw_w": round(draw, 6), "cap_w": round(cap, 6),
                        "steps": prev_steps,
                        "freq_ceiling_ghz": prev_ceiling,
                        "core_fraction": round(prev_fraction, 6)},
                action={"direction": direction, "steps": self.steps,
                        "epoch": self.epoch,
                        "freq_ceiling_ghz": ceiling,
                        "core_fraction": round(fraction, 6)},
                alternatives=[{"steps": prev_steps,
                               "rejected": ("draw exceeded the cap"
                                            if direction == "tighten"
                                            else "draw fell below the"
                                                 " release threshold")}],
                reason="power-cap governor stepped the actuation ladder to"
                       " keep the metered cluster draw under the watt"
                       " budget")

    def _apply_ceiling(self, ceiling: Optional[float]) -> None:
        """Push the new ceiling onto every live node's pools right away.

        The elastic refresh re-applies it persistently; this immediate
        pass stops pools already running above the ceiling from drawing
        over-cap power for up to a whole ``T_refresh``.
        """
        for node in self.cluster.nodes:
            if not node.down:
                node.apply_frequency_ceiling(ceiling)
        self._stamp_servers()

    def _stamp_servers(self) -> None:
        """Advertise the per-server cap share on the hardware hook."""
        n = len(self.cluster.servers)
        share = self._active_cap_w / n if n else self._active_cap_w
        for server in self.cluster.servers:
            server.power_cap_w = share
