"""Tenancy tunables: tenants, energy budgets, power caps, pricing.

A :class:`TenancyConfig` switches on the energy-multi-tenancy machinery
of ``repro.tenancy``: per-tenant energy budgets over sliding windows,
the cluster power-cap control loop, and joule-denominated billing. Like
every other opt-in layer, a :class:`Cluster` built without a
``TenancyConfig`` runs the exact pre-tenancy code paths (the regression
suite pins this down to the byte).

All tenancy decisions are pure functions of simulation time and metered
counters — no random draws — so tenancy-armed runs are exactly as
deterministic as plain ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.obs.registry import LEDGER_COMPONENTS


def _require_finite(name: str, value: float) -> None:
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite: {value}")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: its benchmarks, its joule budget, its shed class.

    ``budget_j`` is the tenant's energy allowance over the trailing
    ``window_s`` seconds (None = unmetered tenant, never throttled).
    When the windowed consumption exceeds the budget, the enforcement
    policy follows the guard's shed ordering: a ``best_effort`` tenant's
    arrivals are shed outright (brownout-style), while an SLO-bearing
    tenant's arrivals are throttled through a token bucket at
    ``throttle_rps``/``throttle_burst`` — slowed down, not starved.
    """

    name: str
    #: Benchmarks owned by this tenant (the registry maps each arrival's
    #: benchmark to exactly one tenant).
    benchmarks: Tuple[str, ...] = ()
    #: Joule allowance over the sliding window; None = never throttled.
    budget_j: Optional[float] = None
    #: Sliding-window length for the budget, seconds.
    window_s: float = 10.0
    #: Best-effort tenants are shed outright while over budget;
    #: SLO-bearing tenants are throttled through the token bucket.
    best_effort: bool = False
    #: Over-budget admission rate for SLO-bearing tenants, workflows/s.
    throttle_rps: float = 2.0
    #: Over-budget token-bucket burst capacity.
    throttle_burst: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a non-empty name")
        if not self.benchmarks:
            raise ValueError(f"tenant {self.name} owns no benchmarks")
        if len(set(self.benchmarks)) != len(self.benchmarks):
            raise ValueError(
                f"tenant {self.name} lists a benchmark twice:"
                f" {self.benchmarks}")
        if self.budget_j is not None:
            _require_finite("budget_j", self.budget_j)
            if self.budget_j <= 0:
                raise ValueError(
                    f"budget_j must be positive: {self.budget_j}")
        _require_finite("window_s", self.window_s)
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive: {self.window_s}")
        _require_finite("throttle_rps", self.throttle_rps)
        _require_finite("throttle_burst", self.throttle_burst)
        if self.throttle_rps <= 0:
            raise ValueError(
                f"throttle_rps must be positive: {self.throttle_rps}")
        if self.throttle_burst < 1:
            raise ValueError(
                f"throttle_burst must be >= 1: {self.throttle_burst}")


@dataclass(frozen=True)
class PricingModel:
    """Dollar prices per megajoule, by ledger component.

    Billing prices *joules*, not GB-seconds: productive ``run`` energy
    is the reference rate, ``cold_start`` energy is dearer (the platform
    burned it on the tenant's behalf to meet latency), ``retry_waste``
    dearest (it bought nothing), and pro-rated overheads (``idle``,
    ``static``, ``freq_switch``) cheapest — they are the cost of keeping
    the lights on, spread over everyone. Components missing from
    ``usd_per_mj`` bill at ``default_usd_per_mj``.
    """

    usd_per_mj: Tuple[Tuple[str, float], ...] = (
        ("run", 0.20),
        ("block", 0.10),
        ("cold_start", 0.30),
        ("idle", 0.06),
        ("freq_switch", 0.06),
        ("retry_waste", 0.40),
        ("cancelled", 0.40),
        ("doomed", 0.40),
        ("shed", 0.40),
        ("static", 0.04),
    )
    default_usd_per_mj: float = 0.20

    def __post_init__(self) -> None:
        _require_finite("default_usd_per_mj", self.default_usd_per_mj)
        if self.default_usd_per_mj < 0:
            raise ValueError(
                f"default_usd_per_mj must be >= 0:"
                f" {self.default_usd_per_mj}")
        for component, price in self.usd_per_mj:
            if component not in LEDGER_COMPONENTS:
                raise ValueError(
                    f"unknown ledger component in pricing: {component}")
            _require_finite(f"usd_per_mj[{component}]", price)
            if price < 0:
                raise ValueError(
                    f"price for {component} must be >= 0: {price}")

    def price(self, component: str) -> float:
        """$/MJ for one ledger component."""
        for name, value in self.usd_per_mj:
            if name == component:
                return value
        return self.default_usd_per_mj

    def cost_usd(self, component: str, joules: float) -> float:
        """Billed dollars for ``joules`` of one component."""
        return self.price(component) * joules / 1e6


@dataclass(frozen=True)
class PowerCapConfig:
    """The cluster power-cap control loop (:class:`PowerCapGovernor`).

    Every ``period_s`` the governor compares the metered cluster draw
    (summed :meth:`Server.power_snapshot_w`) against the active cap and
    actuates one step through the existing controllers: while over the
    cap it lowers the cluster-wide frequency ceiling one DVFS level per
    tick, then shrinks the usable core fraction by ``core_step`` per
    tick down to ``min_core_fraction``; once the draw falls below
    ``release_fraction`` of the cap it releases one step per tick in the
    reverse order. ``schedule`` makes the cap time-varying: a sorted
    sequence of ``(t_s, cap_w)`` steps, each active from its timestamp
    on (before the first step, ``cap_w`` applies).
    """

    #: The standing cap, watts.
    cap_w: float = 400.0
    #: Governor tick period (the T_refresh of the cap loop), seconds.
    period_s: float = 2.0
    #: Time-varying cap steps: ``((t_s, cap_w), ...)``, sorted by time.
    schedule: Tuple[Tuple[float, float], ...] = ()
    #: Draw below ``release_fraction * cap`` releases one actuation step.
    release_fraction: float = 0.85
    #: Floor on the usable-core fraction when shrinking pools.
    min_core_fraction: float = 0.25
    #: Usable-core fraction removed (or restored) per governor tick.
    core_step: float = 0.125

    def __post_init__(self) -> None:
        _require_finite("cap_w", self.cap_w)
        _require_finite("period_s", self.period_s)
        _require_finite("release_fraction", self.release_fraction)
        _require_finite("min_core_fraction", self.min_core_fraction)
        _require_finite("core_step", self.core_step)
        if self.cap_w <= 0:
            raise ValueError(f"cap_w must be positive: {self.cap_w}")
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive: {self.period_s}")
        if not 0 < self.release_fraction < 1:
            raise ValueError(
                f"release_fraction must be in (0, 1):"
                f" {self.release_fraction}")
        if not 0 < self.min_core_fraction <= 1:
            raise ValueError(
                f"min_core_fraction must be in (0, 1]:"
                f" {self.min_core_fraction}")
        if not 0 < self.core_step <= 1:
            raise ValueError(
                f"core_step must be in (0, 1]: {self.core_step}")
        last_t = -math.inf
        for step in self.schedule:
            if len(step) != 2:
                raise ValueError(f"schedule steps are (t_s, cap_w): {step}")
            t, watts = step
            _require_finite("schedule t_s", t)
            _require_finite("schedule cap_w", watts)
            if t < 0:
                raise ValueError(f"schedule times must be >= 0: {t}")
            if watts <= 0:
                raise ValueError(f"schedule caps must be positive: {watts}")
            if t <= last_t:
                raise ValueError(
                    f"schedule must be strictly increasing in time:"
                    f" {self.schedule}")
            last_t = t

    def cap_at(self, now: float) -> float:
        """The active cap at simulation time ``now``, watts."""
        cap = self.cap_w
        for t, watts in self.schedule:
            if t <= now:
                cap = watts
            else:
                break
        return cap


@dataclass(frozen=True)
class TenancyConfig:
    """The full energy-multi-tenancy policy of one cluster.

    ``power_cap`` left ``None`` disables the governor; a cluster with no
    ``TenancyConfig`` at all runs the pre-tenancy code byte-for-byte.
    """

    tenants: Tuple[TenantSpec, ...] = ()
    #: Budget-meter poll period (how often windowed consumption updates).
    meter_period_s: float = 1.0
    power_cap: Optional[PowerCapConfig] = None
    pricing: PricingModel = field(default_factory=PricingModel)

    def __post_init__(self) -> None:
        _require_finite("meter_period_s", self.meter_period_s)
        if self.meter_period_s <= 0:
            raise ValueError(
                f"meter_period_s must be positive: {self.meter_period_s}")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        owned: Dict[str, str] = {}
        for tenant in self.tenants:
            for benchmark in tenant.benchmarks:
                if benchmark in owned:
                    raise ValueError(
                        f"benchmark {benchmark} is owned by both"
                        f" {owned[benchmark]} and {tenant.name}")
                owned[benchmark] = tenant.name

    def tenant_names(self) -> Tuple[str, ...]:
        return tuple(tenant.name for tenant in self.tenants)
