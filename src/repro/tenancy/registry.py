"""The tenant registry: who owns which benchmark, who spent what.

The registry is the pure bookkeeping half of ``repro.tenancy``: it maps
benchmarks to tenants and maintains each tenant's energy consumption
over a sliding window. The runtime charges it from the live energy
meters; the enforcement policy (shed vs. throttle) reads
:meth:`TenantRegistry.over_budget` and acts through the guard-style
admission hook in :mod:`repro.tenancy.runtime`.

Every structure here is driven exclusively by simulation time and
metered joules — no wall clock, no randomness — so budget decisions are
deterministic and replayable.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.tenancy.config import TenancyConfig, TenantSpec

#: The pseudo-tenant that owns benchmarks no TenantSpec claims.
UNOWNED = "(unowned)"


class EnergyBudgetWindow:
    """A sliding-window joule counter: charge events expire after ``window_s``.

    Charges are appended with their simulation timestamp;
    :meth:`used_j` drops everything older than the window before
    summing. The running total is maintained incrementally so a poll
    every ``meter_period_s`` stays O(expired charges), not O(window).
    """

    def __init__(self, window_s: float):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive: {window_s}")
        self.window_s = window_s
        self._charges: Deque[Tuple[float, float]] = deque()
        self._total_j = 0.0
        #: Lifetime joules charged (never expires; billing cross-check).
        self.lifetime_j = 0.0

    def charge(self, now: float, joules: float) -> None:
        """Add ``joules`` consumed at simulation time ``now``."""
        if joules <= 0:
            return
        self._charges.append((now, joules))
        self._total_j += joules
        self.lifetime_j += joules

    def used_j(self, now: float) -> float:
        """Joules consumed within the trailing window at ``now``."""
        horizon = now - self.window_s
        while self._charges and self._charges[0][0] <= horizon:
            _, joules = self._charges.popleft()
            self._total_j -= joules
        # Guard against float drift when the deque empties.
        if not self._charges:
            self._total_j = 0.0
        return self._total_j


class TenantRegistry:
    """Benchmark → tenant mapping plus per-tenant budget windows."""

    def __init__(self, config: TenancyConfig):
        self.config = config
        self._by_benchmark: Dict[str, TenantSpec] = {}
        for tenant in config.tenants:
            for benchmark in tenant.benchmarks:
                self._by_benchmark[benchmark] = tenant
        self._windows: Dict[str, EnergyBudgetWindow] = {
            tenant.name: EnergyBudgetWindow(tenant.window_s)
            for tenant in config.tenants
        }
        #: Lifetime joules charged to benchmarks no tenant owns.
        self.unowned_j = 0.0
        #: Throttle decisions per tenant (the report's counter).
        self.throttle_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def tenant_of(self, benchmark: Optional[str]) -> Optional[TenantSpec]:
        """The owning tenant, or None for unowned benchmarks."""
        if benchmark is None:
            return None
        return self._by_benchmark.get(benchmark)

    def tenant_name_of(self, benchmark: Optional[str]) -> str:
        """The owning tenant's name, or :data:`UNOWNED`."""
        tenant = self.tenant_of(benchmark)
        return tenant.name if tenant is not None else UNOWNED

    def tenants(self) -> Tuple[TenantSpec, ...]:
        return self.config.tenants

    # ------------------------------------------------------------------
    # Budget accounting
    # ------------------------------------------------------------------
    def charge(self, benchmark: str, now: float, joules: float) -> None:
        """Charge metered energy of ``benchmark`` to its owning tenant."""
        tenant = self.tenant_of(benchmark)
        if tenant is None:
            if joules > 0:
                self.unowned_j += joules
            return
        self._windows[tenant.name].charge(now, joules)

    def used_j(self, tenant_name: str, now: float) -> float:
        """Windowed consumption of one tenant at ``now``."""
        window = self._windows.get(tenant_name)
        if window is None:
            return 0.0
        return window.used_j(now)

    def lifetime_j(self, tenant_name: str) -> float:
        """Lifetime metered joules of one tenant."""
        window = self._windows.get(tenant_name)
        if window is None:
            return 0.0
        return window.lifetime_j

    def over_budget(self, benchmark: str, now: float
                    ) -> Optional[TenantSpec]:
        """The owning tenant iff its windowed use exceeds its budget.

        Unowned benchmarks and unmetered tenants (``budget_j=None``)
        are never over budget.
        """
        tenant = self.tenant_of(benchmark)
        if tenant is None or tenant.budget_j is None:
            return None
        if self.used_j(tenant.name, now) > tenant.budget_j:
            return tenant
        return None

    def record_throttle(self, tenant_name: str) -> None:
        self.throttle_counts[tenant_name] = (
            self.throttle_counts.get(tenant_name, 0) + 1)

    # ------------------------------------------------------------------
    # Introspection (audit inputs, report rows)
    # ------------------------------------------------------------------
    def snapshot(self, now: float) -> Dict[str, Dict[str, object]]:
        """Per-tenant budget state at ``now`` (read-only)."""
        rows: Dict[str, Dict[str, object]] = {}
        for tenant in self.config.tenants:
            used = self.used_j(tenant.name, now)
            rows[tenant.name] = {
                "budget_j": tenant.budget_j,
                "window_s": tenant.window_s,
                "used_j": round(used, 6),
                "over_budget": (tenant.budget_j is not None
                                and used > tenant.budget_j),
                "best_effort": tenant.best_effort,
                "throttles": self.throttle_counts.get(tenant.name, 0),
            }
        return rows
