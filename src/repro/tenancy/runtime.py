"""The per-cluster tenancy runtime: metering, enforcement, settlement.

One :class:`TenancyRuntime` is created by a :class:`Cluster` whose
config carries a :class:`TenancyConfig`, and installed as
``env.tenancy`` (the same pattern as ``env.guard``). Every
instrumentation point in the platform checks ``tenancy is None`` first,
so tenancy-off runs execute the pre-tenancy code byte-for-byte.

Three loops of responsibility:

* **metering** — every ``meter_period_s`` the runtime polls the servers'
  consumer-attributed energy meters, charges each benchmark's delta to
  its owning tenant's sliding budget window, and keeps the power-cap
  governor ticking;
* **enforcement** — arrivals of an over-budget tenant are shed
  (best-effort tenants, brownout-style) or throttled through a token
  bucket (SLO-bearing tenants), each decision emitting a
  ``tenant_throttle`` trace instant and audit record; with the guard
  armed, over-budget tenants are additionally demoted to the
  best-effort shed class inside the guard's own brownout policy;
* **settlement** — after the energy ledger closes a run,
  :meth:`settle` prices the per-tenant rollup into a bill and emits one
  ``tenant_bill`` instant per tenant for the report pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.guard.admission import TokenBucket
from repro.tenancy.billing import bill_ledger_run
from repro.tenancy.config import TenancyConfig, TenantSpec
from repro.tenancy.governor import PowerCapGovernor
from repro.tenancy.registry import TenantRegistry
from repro.obs.prof import profiled

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.platform.system import NodeSystem

#: Frontend trace track for tenancy decisions (matches guard events).
FRONTEND_TRACK = "frontend"

#: Shed reasons added to the guard's taxonomy by the tenancy layer.
SHED_TENANT_BUDGET = "tenant_budget"      # best-effort tenant over budget
SHED_TENANT_THROTTLE = "tenant_throttle"  # SLO tenant over budget, bucket dry


class TenancyRuntime:
    """All armed tenancy machinery of one cluster."""

    def __init__(self, cluster: "Cluster", config: TenancyConfig):
        self.cluster = cluster
        self.config = config
        self.env = cluster.env
        self.metrics = cluster.metrics
        self.registry = TenantRegistry(config)
        self.governor: Optional[PowerCapGovernor] = (
            PowerCapGovernor(cluster, config.power_cap)
            if config.power_cap is not None else None)
        #: Over-budget token buckets for SLO-bearing tenants.
        self._buckets: Dict[str, TokenBucket] = {}
        #: Last meter-loop reading per benchmark (delta charging).
        self._last_attributed: Dict[str, float] = {}
        #: Settled bills, one document per closed ledger run.
        self.bills: List[Dict[str, object]] = []

    def arm(self) -> None:
        """Start the periodic tenancy processes (meter + governor)."""
        self.env.process(self._meter_loop(), name="tenancy-meter")
        if self.governor is not None:
            self.env.process(self._governor_loop(), name="tenancy-governor")

    # ------------------------------------------------------------------
    # Metering
    # ------------------------------------------------------------------
    @profiled("tenancy")
    def _poll_meters(self) -> None:
        """Charge each benchmark's attributed-energy delta to its tenant."""
        now = self.env.now
        totals: Dict[str, float] = {}
        for server in self.cluster.servers:
            for benchmark, joules in server.meter.by_consumer().items():
                totals[benchmark] = totals.get(benchmark, 0.0) + joules
        for benchmark, joules in totals.items():
            delta = joules - self._last_attributed.get(benchmark, 0.0)
            if delta > 0:
                self.registry.charge(benchmark, now, delta)
            self._last_attributed[benchmark] = joules

    def _meter_loop(self):
        while True:
            yield self.env.timeout(self.config.meter_period_s)
            self._poll_meters()

    def _governor_loop(self):
        while True:
            yield self.env.timeout(self.config.power_cap.period_s)
            self.governor.tick()

    # ------------------------------------------------------------------
    # Enforcement (Cluster.submit_workflow, after the guard's check)
    # ------------------------------------------------------------------
    @profiled("tenancy")
    def over_budget_tenant(self, benchmark: str) -> Optional[TenantSpec]:
        """The owning tenant iff it is over budget right now."""
        return self.registry.over_budget(benchmark, self.env.now)

    def demote_to_best_effort(self, benchmark: str) -> bool:
        """Guard hook: should this arrival shed with the best-effort class?

        An over-budget tenant's traffic joins the guard's best-effort
        shed class — dropped first in any brownout — regardless of its
        own SLO standing. This is the "shed over-budget tenants first"
        half of the enforcement policy; the budget's own shed/throttle
        decision happens in :meth:`admit_workflow`.
        """
        return self.over_budget_tenant(benchmark) is not None

    def _bucket(self, tenant: TenantSpec) -> TokenBucket:
        if tenant.name not in self._buckets:
            self._buckets[tenant.name] = TokenBucket(tenant.throttle_rps,
                                                     tenant.throttle_burst)
        return self._buckets[tenant.name]

    def admit_workflow(self, benchmark: str) -> bool:
        """Budget enforcement for one arrival; False = dropped (accounted).

        Best-effort tenants over budget are shed outright; SLO-bearing
        tenants over budget are throttled down to their token bucket's
        rate (admitted while tokens last, dropped once dry).
        """
        tenant = self.over_budget_tenant(benchmark)
        if tenant is None:
            return True
        now = self.env.now
        used = self.registry.used_j(tenant.name, now)
        if tenant.best_effort:
            action = "shed"
            reason = SHED_TENANT_BUDGET
        elif self._bucket(tenant).take(now):
            action = "throttled_admit"
            reason = None
        else:
            action = "throttled_drop"
            reason = SHED_TENANT_THROTTLE
        verify = self.env.verify
        if verify.enabled:
            verify.on_tenant_admit(benchmark, tenant, action)
        self.registry.record_throttle(tenant.name)
        self.metrics.tenant_throttles += 1
        if reason is not None:
            self.metrics.record_shed(benchmark, reason)
        self.env.trace.instant(
            "tenant_throttle", FRONTEND_TRACK, benchmark=benchmark,
            tenant=tenant.name, action=action,
            used_j=round(used, 6), budget_j=tenant.budget_j)
        audit = self.env.audit
        if audit is not None:
            audit.record(
                "tenant_throttle", FRONTEND_TRACK,
                inputs={"benchmark": benchmark, "tenant": tenant.name,
                        "used_j": round(used, 6),
                        "budget_j": tenant.budget_j,
                        "window_s": tenant.window_s,
                        "best_effort": tenant.best_effort},
                action={"decision": action},
                alternatives=[{"admit": True,
                               "rejected": "tenant exhausted its windowed"
                                           " energy budget"}],
                reason="per-tenant energy budget enforcement: the tenant's"
                       " sliding-window consumption exceeds its joule"
                       " allowance")
        return reason is None

    # ------------------------------------------------------------------
    # Node hooks (dispatch clamp + pool sizing + reboot)
    # ------------------------------------------------------------------
    def freq_ceiling_ghz(self) -> Optional[float]:
        if self.governor is None:
            return None
        return self.governor.freq_ceiling_ghz()

    def clamp_freq(self, freq_ghz: Optional[float]) -> Optional[float]:
        if self.governor is None:
            return freq_ghz
        return self.governor.clamp(freq_ghz)

    def capped_cores(self, n_cores: int) -> int:
        if self.governor is None:
            return n_cores
        return self.governor.capped_cores(n_cores)

    def on_node_reboot(self, node: "NodeSystem") -> None:
        """Re-impose the active ceiling on a freshly rebooted node."""
        ceiling = self.freq_ceiling_ghz()
        if ceiling is not None:
            node.apply_frequency_ceiling(ceiling)

    # ------------------------------------------------------------------
    # Settlement (after EnergyLedger.close_run)
    # ------------------------------------------------------------------
    def settle(self, ledger) -> Dict[str, object]:
        """Price the just-closed ledger run into a per-tenant bill."""
        run = ledger.reports[-1].run if ledger.reports else None
        document = bill_ledger_run(ledger, self.registry.tenant_name_of,
                                   self.config.pricing, run=run)
        document["throttles"] = dict(self.registry.throttle_counts)
        self.bills.append(document)
        if self.env.trace.enabled:
            for row in document["tenants"]:
                self.env.trace.instant(
                    "tenant_bill", FRONTEND_TRACK,
                    tenant=row["tenant"],
                    energy_j=round(row["energy_j"], 6),
                    energy_share=round(row["energy_share"], 6),
                    cost_usd=round(row["cost_usd"], 9),
                    throttles=self.registry.throttle_counts.get(
                        row["tenant"], 0))
        return document
