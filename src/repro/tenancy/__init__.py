"""repro.tenancy — energy-first multi-tenancy for the EcoFaaS control plane.

Four opt-in pieces, layered on the PR-5 energy-attribution ledger:

- **Tenant registry** (:mod:`repro.tenancy.registry`): benchmarks mapped
  to tenants, each with a joule budget over a sliding window charged
  from the live consumer-attributed energy meters.
- **Budget enforcement** (:mod:`repro.tenancy.runtime`): over-budget
  tenants' best-effort arrivals are shed first (brownout-style) and
  SLO-bearing ones throttled through a token bucket, with
  ``tenant_throttle`` audit records and trace instants per decision;
  with the guard armed, over-budget traffic is demoted to the guard's
  best-effort shed class too.
- **Power-cap governor** (:mod:`repro.tenancy.governor`): a cluster
  control loop that watches the metered draw each period and actuates
  per-pool frequency steps, then pool shrinking, through the existing
  controllers to stay under a (possibly time-varying) watt budget.
- **Energy billing** (:mod:`repro.tenancy.billing`): joules priced per
  ledger component (run / cold-start / idle / retry-waste rates differ)
  instead of GB-seconds, summing to the ledger total by construction.

Everything is opt-in: a cluster whose config carries no
:class:`TenancyConfig` runs the exact pre-tenancy code path and
produces bit-identical results (regression-tested against the stored
seed fingerprints).
"""

from repro.tenancy.billing import (
    UNATTRIBUTED,
    bill_from_breakdown,
    bill_ledger_run,
    format_bill,
    jain_index,
)
from repro.tenancy.config import (
    PowerCapConfig,
    PricingModel,
    TenancyConfig,
    TenantSpec,
)
from repro.tenancy.governor import PowerCapGovernor
from repro.tenancy.registry import UNOWNED, EnergyBudgetWindow, TenantRegistry
from repro.tenancy.runtime import (
    SHED_TENANT_BUDGET,
    SHED_TENANT_THROTTLE,
    TenancyRuntime,
)

__all__ = [
    "EnergyBudgetWindow",
    "PowerCapConfig",
    "PowerCapGovernor",
    "PricingModel",
    "TenancyConfig",
    "TenancyRuntime",
    "TenantRegistry",
    "TenantSpec",
    "UNATTRIBUTED",
    "UNOWNED",
    "SHED_TENANT_BUDGET",
    "SHED_TENANT_THROTTLE",
    "bill_from_breakdown",
    "bill_ledger_run",
    "format_bill",
    "jain_index",
]
