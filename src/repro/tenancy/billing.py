"""Energy billing: price each tenant's joules instead of GB-seconds.

The bill starts from the energy ledger's per-(benchmark x component)
rollup. Entries attributable to a benchmark are charged to its owning
tenant directly; unattributable overhead (idle cores, background static
power, idle-pool retunes) is spread across tenants in proportion to
their attributed consumption — so the billed joules sum to the ledger
total by construction (the conservation property test pins this at
1e-6). Each ledger component is priced at its own $/MJ rate
(:class:`~repro.tenancy.config.PricingModel`): productive ``run``
energy is the reference, ``cold_start`` is dearer, ``retry_waste``
dearest, spread overheads cheapest.

The module also provides the Jain fairness index on energy share — the
``tenancy`` experiment's fairness metric.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.registry import LEDGER_COMPONENTS
from repro.tenancy.config import PricingModel

#: The rollup key for ledger entries with no benchmark attribution.
UNATTRIBUTED = "(unattributed)"


def jain_index(values: List[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 = perfectly even shares; ``1/n`` = one party takes everything.
    Defined as 1.0 for empty or all-zero inputs (nothing to be unfair
    about).
    """
    total = sum(values)
    squares = sum(v * v for v in values)
    if not values or squares <= 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def bill_from_breakdown(
        by_benchmark_component: Dict[str, Dict[str, float]],
        tenant_of: Callable[[str], str],
        pricing: Optional[PricingModel] = None) -> Dict[str, object]:
    """Price a per-(benchmark x component) joule rollup by tenant.

    ``tenant_of`` maps a benchmark name to its tenant's name. Rows keyed
    :data:`UNATTRIBUTED` are spread across tenants proportionally to
    their attributed joules (or kept as their own row when nothing is
    attributed at all). Returns a JSON-serializable document.
    """
    pricing = pricing or PricingModel()
    tenants: Dict[str, Dict[str, float]] = {}
    spread_pool = {c: 0.0 for c in LEDGER_COMPONENTS}
    for benchmark, components in sorted(by_benchmark_component.items()):
        if benchmark == UNATTRIBUTED:
            for component, joules in components.items():
                spread_pool[component] += joules
            continue
        row = tenants.setdefault(
            tenant_of(benchmark), {c: 0.0 for c in LEDGER_COMPONENTS})
        for component, joules in components.items():
            row[component] += joules

    attributed = {name: sum(row.values()) for name, row in tenants.items()}
    attributed_total = sum(attributed.values())
    spread_total = sum(spread_pool.values())
    if spread_total > 0:
        if attributed_total > 0:
            for name, row in tenants.items():
                share = attributed[name] / attributed_total
                for component, joules in spread_pool.items():
                    row[component] += joules * share
        else:
            # Nothing ran: the overhead has no consumption to follow.
            tenants[UNATTRIBUTED] = dict(spread_pool)

    rows = []
    total_j = sum(sum(row.values()) for row in tenants.values())
    for name in sorted(tenants):
        row = tenants[name]
        energy_j = sum(row.values())
        cost_by_component = {
            component: pricing.cost_usd(component, joules)
            for component, joules in row.items()}
        rows.append({
            "tenant": name,
            "energy_j": energy_j,
            "energy_share": (energy_j / total_j) if total_j > 0 else 0.0,
            "by_component_j": {c: row.get(c, 0.0)
                               for c in LEDGER_COMPONENTS},
            "by_component_usd": cost_by_component,
            "cost_usd": sum(cost_by_component.values()),
        })
    return {
        "source": "repro.tenancy.billing (EcoFaaS reproduction)",
        "total_j": total_j,
        "total_usd": sum(row["cost_usd"] for row in rows),
        "jain_energy_share": jain_index(
            [row["energy_j"] for row in rows
             if row["tenant"] != UNATTRIBUTED]),
        "tenants": rows,
    }


def bill_ledger_run(ledger, tenant_of: Callable[[str], str],
                    pricing: Optional[PricingModel] = None,
                    run: Optional[int] = None) -> Dict[str, object]:
    """Bill one closed run of a live :class:`EnergyLedger`."""
    return bill_from_breakdown(ledger.by_benchmark_component(run),
                               tenant_of, pricing)


def format_bill(document: Dict[str, object]) -> str:
    """Render one bill document as a text table."""
    lines = ["== energy bill (joules priced per component) =="]
    header = (f"{'tenant':16s} {'energy_j':>12s} {'share':>7s}"
              f" {'run_j':>10s} {'cold_j':>10s} {'waste_j':>10s}"
              f" {'cost_usd':>10s}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in document["tenants"]:
        components = row["by_component_j"]
        lines.append(
            f"{row['tenant']:16s} {row['energy_j']:12.1f}"
            f" {100.0 * row['energy_share']:6.1f}%"
            f" {components.get('run', 0.0):10.1f}"
            f" {components.get('cold_start', 0.0):10.1f}"
            f" {components.get('retry_waste', 0.0):10.1f}"
            f" {row['cost_usd']:10.6f}")
    lines.append("-" * len(header))
    lines.append(
        f"{'total':16s} {document['total_j']:12.1f} {'':7s}"
        f" {'':10s} {'':10s} {'':10s} {document['total_usd']:10.6f}")
    lines.append(
        f"Jain fairness index on energy share:"
        f" {document['jain_energy_share']:.4f}")
    return "\n".join(lines) + "\n"
