"""EcoFaaS tunables (defaults are the paper's chosen operating points)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EcoFaaSConfig:
    """Configuration of the EcoFaaS framework.

    Defaults follow Section VII: History Tables keep the last 100
    invocations, the Delay-Power Table refreshes every 5 s, Core Pools
    every 2 s; node-controller frequency changes go through MSRs in a few
    tens of µs.
    """

    #: Workflow Controller deadline-recomputation period (Fig. 20 knob).
    t_update_s: float = 5.0
    #: Core-pool resize/retune period (Fig. 20 knob).
    t_refresh_s: float = 2.0
    #: History Table capacity.
    history_capacity: int = 100
    #: Cost of a root/MSR frequency change (Section VIII-D).
    kernel_switch_cost_s: float = 50e-6
    #: Process context-switch cost inside a pool.
    context_switch_s: float = 5e-6
    #: Use the input-aware MLP predictor (else EWMA only).
    use_input_model: bool = True
    #: Prewarm cold containers off the critical path (Section VI-E1).
    prewarm: bool = True
    #: Maximum concurrent core pools (Fig. 21 guardrail).
    max_pools: int = 8
    #: Observations before a function's predictions are trusted.
    min_profile_observations: int = 3
    #: Bounded execution-time overprediction injected into the predictor
    #: (the Fig. 19 sensitivity knob); 0.2 means +20 %.
    overprediction_error: float = 0.0
    #: Ablation: freeze pool assignment (no elastic refresh).
    elastic: bool = True
    #: Ablation: run-to-completion inside pools instead of
    #: context-switch-on-idle.
    run_to_completion: bool = False
    #: Ablation: disable the MILP split (fall back to proportional).
    use_milp: bool = True
    #: Pool demand fraction below which a pool is boosted one level when
    #: its jobs frequently needed temporary boosts.
    boost_promote_fraction: float = 0.10
    #: Fraction of the remaining deadline the dispatcher plans against
    #: (headroom for queueing mispredictions; corrective actions use the
    #: rest). 0.7 is the measured sweet spot: tail latency drops sharply
    #: with no energy cost.
    deadline_margin: float = 0.7

    def __post_init__(self) -> None:
        if not 0 < self.deadline_margin <= 1:
            raise ValueError("deadline_margin must be in (0, 1]")
        if self.t_update_s <= 0 or self.t_refresh_s <= 0:
            raise ValueError("update/refresh periods must be positive")
        if self.history_capacity < 1:
            raise ValueError("history capacity must be >= 1")
        if self.kernel_switch_cost_s < 0 or self.context_switch_s < 0:
            raise ValueError("switch costs must be non-negative")
        if self.max_pools < 1:
            raise ValueError("need at least one pool")
        if self.min_profile_observations < 1:
            raise ValueError("min_profile_observations must be >= 1")
        if self.overprediction_error < 0:
            raise ValueError("overprediction error must be non-negative")
        if not 0 <= self.boost_promote_fraction <= 1:
            raise ValueError("boost_promote_fraction must be in [0, 1]")
