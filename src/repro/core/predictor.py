"""Per-function performance/energy prediction at any frequency.

A :class:`FrequencyProfile` digests the History Table into estimates of
``T_Run(f)``, ``T_Block``, and ``Energy(f)`` for every frequency level:

* per-frequency adaptive EWMAs smooth the measured ``T_Run`` / ``Energy``;
* frequencies never measured are extrapolated through the physical
  two-parameter model ``T_Run(f) = a/f + b`` (compute + memory time),
  least-squares-fitted to the measured levels — with a single measured
  level the fit is conservative (``b = 0``, pure compute scaling, which
  over-predicts the cost of slowing down and therefore never causes a
  deadline miss by itself);
* energy at unmeasured levels comes from the provider's power model
  applied to the extrapolated run time;
* optionally (Section VI-E2) a 3-layer MLP over *all* input features
  refines ``T_Run`` per invocation; frequency scaling still goes through
  the fitted physical model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.ewma import AdaptiveEwma
from repro.core.history import HistoryTable
from repro.core.mlp import MLPRegressor
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.obs.prof import profiled


def fit_compute_memory(points: Sequence[tuple]) -> tuple:
    """Least-squares fit of ``t = a/f + b`` with ``a, b >= 0``.

    ``points`` are ``(freq_ghz, t_seconds)`` pairs. With one point the fit
    is the conservative pure-compute model (``b = 0``).
    """
    if not points:
        raise ValueError("need at least one (frequency, time) point")
    if len(points) == 1:
        freq, t = points[0]
        return (t * freq, 0.0)
    inv_f = np.array([1.0 / f for f, _ in points])
    times = np.array([t for _, t in points])
    design = np.column_stack([inv_f, np.ones_like(inv_f)])
    (a, b), *_ = np.linalg.lstsq(design, times, rcond=None)
    if b < 0:
        # Degenerate fit (noise): fall back to pure compute scaling
        # through the mean of the scaled points.
        a = float(np.mean([t * f for f, t in points]))
        b = 0.0
    if a < 0:
        a = 0.0
        b = float(np.mean(times))
    return (float(a), float(b))


class FrequencyProfile:
    """Online estimator of one function's time/energy vs frequency."""

    #: Replay-training cadence for the MLP.
    _MLP_REPLAY_EVERY = 8
    _MLP_BATCH = 32

    def __init__(self, scale: FrequencyScale, power: PowerModel,
                 history: Optional[HistoryTable] = None,
                 use_mlp: bool = False,
                 feature_names: Optional[Sequence[str]] = None,
                 seed: int = 0):
        self.scale = scale
        self.power = power
        self.history = history if history is not None else HistoryTable()
        self._t_run: Dict[float, AdaptiveEwma] = {}
        self._energy: Dict[float, AdaptiveEwma] = {}
        self._t_block = AdaptiveEwma()
        self.use_mlp = use_mlp
        self.feature_names: List[str] = sorted(feature_names or [])
        self._mlp: Optional[MLPRegressor] = None
        if use_mlp and self.feature_names:
            self._mlp = MLPRegressor(len(self.feature_names), seed=seed)
        self._rng = np.random.default_rng(seed)
        self._observations = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    @property
    def has_data(self) -> bool:
        return self._observations > 0

    @property
    def observations(self) -> int:
        return self._observations

    @profiled("core.predictor")
    def observe(self, freq_ghz: float, t_run_s: float, t_block_s: float,
                energy_j: float,
                features: Optional[Dict[str, float]] = None) -> None:
        """Absorb one measured invocation (the dispatcher's profiling)."""
        self.history.record(freq_ghz, t_run_s, t_block_s, energy_j, features)
        self._t_run.setdefault(freq_ghz, AdaptiveEwma()).update(t_run_s)
        self._energy.setdefault(freq_ghz, AdaptiveEwma()).update(energy_j)
        self._t_block.update(t_block_s)
        self._observations += 1
        if self._mlp is not None and features:
            self._train_mlp(features, freq_ghz, t_run_s)

    def _train_mlp(self, features: Dict[str, float], freq_ghz: float,
                   t_run_s: float) -> None:
        a, b = self._fit()
        target = self._to_max_freq(t_run_s, freq_ghz, a, b)
        if target <= 0:
            return
        row = [features.get(name, 0.0) for name in self.feature_names]
        self._mlp.partial_fit([row], [target], epochs=2)
        if self._observations % self._MLP_REPLAY_EVERY == 0:
            self._replay()

    def _replay(self) -> None:
        rows = self.history.rows
        if len(rows) < 4:
            return
        a, b = self._fit()
        sample = self._rng.choice(
            len(rows), size=min(self._MLP_BATCH, len(rows)), replace=False)
        x, y = [], []
        for i in sample:
            row = rows[i]
            if not row.features:
                continue
            target = self._to_max_freq(row.t_run_s, row.freq_ghz, a, b)
            if target <= 0:
                continue
            x.append([row.features.get(n, 0.0) for n in self.feature_names])
            y.append(target)
        if x:
            self._mlp.partial_fit(x, y, epochs=2)

    # ------------------------------------------------------------------
    # Frequency scaling
    # ------------------------------------------------------------------
    def _fit(self) -> tuple:
        points = [(freq, ewma.forecast())
                  for freq, ewma in self._t_run.items() if ewma.initialized]
        if not points:
            raise RuntimeError("no T_Run observations yet")
        return fit_compute_memory(points)

    def _to_max_freq(self, t_run_s: float, freq_ghz: float,
                     a: float, b: float) -> float:
        """Rescale a measured run time to the top frequency via the fit."""
        t_at_freq = a / freq_ghz + b
        t_at_max = a / self.scale.max + b
        if t_at_freq <= 0:
            return t_run_s
        return t_run_s * t_at_max / t_at_freq

    def _from_max_freq(self, t_at_max: float, freq_ghz: float,
                       a: float, b: float) -> float:
        t_max_model = a / self.scale.max + b
        t_f_model = a / freq_ghz + b
        if t_max_model <= 0:
            return t_at_max
        return t_at_max * t_f_model / t_max_model

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------
    @profiled("core.predictor")
    def predict_t_run(self, freq_ghz: float,
                      features: Optional[Dict[str, float]] = None) -> float:
        """Expected on-core seconds at ``freq_ghz`` (input-aware if set)."""
        if not self.has_data:
            raise RuntimeError("no observations yet")
        a, b = self._fit()
        fit_value = max(0.0, a / freq_ghz + b)
        if (self._mlp is not None and features
                and self._mlp.samples_seen >= self._MLP_BATCH):
            row = [features.get(n, 0.0) for n in self.feature_names]
            t_at_max = self._mlp.predict_one(row)
            refined = self._from_max_freq(t_at_max, freq_ghz, a, b)
            # A barely-trained network can be wildly off; never let it
            # stray far from the fitted physical model.
            return float(np.clip(refined, 0.25 * fit_value, 4.0 * fit_value))
        ewma = self._t_run.get(freq_ghz)
        if ewma is not None and ewma.initialized:
            return max(0.0, ewma.forecast())
        return fit_value

    @profiled("core.predictor")
    def predict_t_block(self,
                        features: Optional[Dict[str, float]] = None) -> float:
        if not self._t_block.initialized:
            raise RuntimeError("no observations yet")
        return max(0.0, self._t_block.forecast())

    @profiled("core.predictor")
    def predict_energy(self, freq_ghz: float,
                       features: Optional[Dict[str, float]] = None) -> float:
        """Expected active energy of one invocation at ``freq_ghz``."""
        if not self.has_data:
            raise RuntimeError("no observations yet")
        ewma = self._energy.get(freq_ghz)
        if features is None and ewma is not None and ewma.initialized:
            return max(0.0, ewma.forecast())
        # Derive from the predicted run time through the power model.
        t_run = self.predict_t_run(freq_ghz, features)
        power_w = (self.power.core_active_power(freq_ghz)
                   + self.power.dram_active_power(1))
        return t_run * power_w
