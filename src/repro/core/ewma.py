"""Exponentially weighted moving averages with adaptive smoothing.

Section VI-B: "EWMA assigns higher weights to more recent measurements, and
uses adaptive smoothing with the Holt-Winters method to dynamically adjust
a parameter α based on the changes in the system state."

We implement Holt's linear (level + trend) smoothing with the Trigg-Leach
tracking signal: α follows ``|smoothed error| / smoothed |error|``, so the
filter reacts quickly to regime changes and settles when the signal is
stable.
"""

from __future__ import annotations

from typing import Optional


class AdaptiveEwma:
    """Holt linear smoothing with a Trigg-Leach adaptive level gain."""

    def __init__(self, alpha: float = 0.2, beta: float = 0.02,
                 tracking_gamma: float = 0.2,
                 alpha_bounds: tuple = (0.05, 0.5)):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        if not 0 <= beta <= 1:
            raise ValueError(f"beta must be in [0, 1]: {beta}")
        if not 0 < tracking_gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1]: {tracking_gamma}")
        lo, hi = alpha_bounds
        if not 0 < lo <= hi <= 1:
            raise ValueError(f"bad alpha bounds {alpha_bounds}")
        self.alpha = alpha
        self.beta = beta
        self.tracking_gamma = tracking_gamma
        self.alpha_bounds = (lo, hi)
        self._level: Optional[float] = None
        self._trend = 0.0
        self._smoothed_error = 0.0
        self._smoothed_abs_error = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        """Number of observations absorbed."""
        return self._count

    @property
    def initialized(self) -> bool:
        return self._level is not None

    def update(self, value: float) -> None:
        """Absorb one observation."""
        self._count += 1
        if self._level is None:
            self._level = float(value)
            return
        error = value - self.forecast()
        gamma = self.tracking_gamma
        self._smoothed_error = (gamma * error
                                + (1 - gamma) * self._smoothed_error)
        self._smoothed_abs_error = (gamma * abs(error)
                                    + (1 - gamma) * self._smoothed_abs_error)
        if self._smoothed_abs_error > 1e-12:
            # Trigg-Leach: gain tracks the bias of recent errors.
            signal = abs(self._smoothed_error) / self._smoothed_abs_error
            lo, hi = self.alpha_bounds
            self.alpha = min(hi, max(lo, signal))
        previous_level = self._level
        self._level = (self.alpha * value
                       + (1 - self.alpha) * (self._level + self._trend))
        self._trend = (self.beta * (self._level - previous_level)
                       + (1 - self.beta) * self._trend)

    def forecast(self) -> float:
        """One-step-ahead forecast."""
        if self._level is None:
            raise RuntimeError("no observations yet")
        return self._level + self._trend

    def forecast_or(self, default: float) -> float:
        """Forecast, or ``default`` before the first observation."""
        if self._level is None:
            return default
        return self.forecast()
