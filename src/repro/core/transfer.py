"""Transfer learning across heterogeneous server types (Section VI-E3).

Delay-Power Tables profiled on one server type (e.g. Haswell) do not carry
over to another (Broadwell, Skylake). The paper trains a simple linear
regression that, given a function's profile on machine A and a small
subset of profiles on machine B, predicts the remaining profiles on B —
reaching 93.1 % accuracy with a quarter of the B samples.

:class:`TransferModel` regresses B-measurements on A-measurements (with an
intercept), per metric (time / energy), optionally per frequency level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class TransferModel:
    """Linear map from source-machine profiles to target-machine profiles."""

    slope: float = 1.0
    intercept: float = 0.0
    r2: Optional[float] = None
    n_train: int = 0

    @classmethod
    def fit(cls, source_values: Sequence[float],
            target_values: Sequence[float]) -> "TransferModel":
        """Least-squares fit of ``target = slope · source + intercept``."""
        source = np.asarray(source_values, dtype=float)
        target = np.asarray(target_values, dtype=float)
        if source.shape != target.shape:
            raise ValueError("source and target samples must align")
        if len(source) < 2:
            raise ValueError("need at least two paired samples to fit")
        design = np.column_stack([source, np.ones_like(source)])
        (slope, intercept), *_ = np.linalg.lstsq(design, target, rcond=None)
        predictions = slope * source + intercept
        ss_res = float(np.sum((target - predictions) ** 2))
        ss_tot = float(np.sum((target - target.mean()) ** 2))
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        return cls(slope=float(slope), intercept=float(intercept),
                   r2=r2, n_train=len(source))

    def predict(self, source_value: float) -> float:
        return self.slope * source_value + self.intercept

    def predict_many(self, source_values: Sequence[float]) -> np.ndarray:
        return (self.slope * np.asarray(source_values, dtype=float)
                + self.intercept)

    def accuracy(self, source_values: Sequence[float],
                 target_values: Sequence[float]) -> float:
        """Mean prediction accuracy ``1 - |error| / actual`` (paper metric)."""
        predictions = self.predict_many(source_values)
        target = np.asarray(target_values, dtype=float)
        if np.any(target <= 0):
            raise ValueError("accuracy metric needs positive targets")
        relative_error = np.abs(predictions - target) / target
        return float(np.mean(1.0 - relative_error))


def transfer_profiles(source: Dict[str, Dict[float, float]],
                      target_subset: Dict[str, Dict[float, float]],
                      ) -> Tuple[TransferModel, Dict[str, Dict[float, float]]]:
    """Fill in missing target-machine profiles from source-machine ones.

    ``source`` maps function → {frequency → metric} on machine A;
    ``target_subset`` holds the same structure for the profiled fraction of
    functions on machine B. Returns the fitted model and complete predicted
    profiles for every source function.
    """
    paired_source: List[float] = []
    paired_target: List[float] = []
    for fn, freqs in target_subset.items():
        if fn not in source:
            raise KeyError(f"{fn!r} profiled on target but not on source")
        for freq, value in freqs.items():
            if freq not in source[fn]:
                raise KeyError(f"{fn!r}@{freq} missing on source")
            paired_source.append(source[fn][freq])
            paired_target.append(value)
    model = TransferModel.fit(paired_source, paired_target)
    predicted = {
        fn: {freq: model.predict(value) for freq, value in freqs.items()}
        for fn, freqs in source.items()
    }
    return model, predicted
