"""Core Pools, the elastic per-node controller, and the EcoFaaS node.

Section VI-C/VI-D: cores are grouped into pools, each at one frequency,
driven by a user-level FPS (our :class:`CorePoolScheduler` configured with
FIFO + old-preempts-young + context-switch-on-idle). Every ``T_refresh``
the node controller collects per-pool statistics plus the dispatchers'
*desired-frequency demand* histogram, recomputes the pool set (levels,
sizes), and moves cores — frequency changes go through the root/MSR path
at a few tens of µs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import EcoFaaSConfig
from repro.core.dispatcher import EnergyAwareDispatcher
from repro.core.profiles import ProfileStore
from repro.hardware.core import Core
from repro.hardware.server import Server
from repro.hardware.work import WorkUnit
from repro.platform.job import Job
from repro.platform.metrics import MetricsCollector
from repro.platform.scheduler import CorePoolScheduler
from repro.platform.system import NodeSystem
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.model import FunctionModel
from repro.workloads.spec import InvocationSpec, RunSegment


class EcoFaaSNode(NodeSystem):
    """One EcoFaaS server: elastic Core Pools + per-function dispatchers."""

    def __init__(self, env: Environment, server: Server,
                 metrics: MetricsCollector, rng: RngRegistry,
                 config: EcoFaaSConfig, store: ProfileStore):
        super().__init__(env, server, metrics, rng)
        self.config = config
        self.store = store
        self.scale = server.scale
        self._free: List[Core] = []
        self._pools: List[CorePoolScheduler] = []
        self._retiring: List[CorePoolScheduler] = []
        #: Last refresh's core targets, for immediate redistribution of
        #: cores released between refreshes.
        self._targets: Dict[float, int] = {}
        #: Smoothed per-level demand across refresh windows (stability).
        self._demand_ewma: Dict[float, float] = {}
        self._dispatchers: Dict[str, EnergyAwareDispatcher] = {}
        #: Desired-frequency demand (level → expected run seconds) within
        #: the current refresh window.
        self._demand: Dict[float, float] = {}
        #: Fig. 21 data: pool count sampled at every refresh.
        self.pool_count_samples: List[tuple] = []
        #: When the control loop last ran (the guard watchdog's signal).
        self.last_refresh_s = env.now
        # Start with every core in one pool at the top frequency — the
        # no-knowledge-yet default.
        self._pools.append(self._make_pool(self.scale.max,
                                           list(server.cores)))
        if config.elastic:
            env.process(self._refresh_loop(),
                        name=f"ecofaas-refresh-{server.server_id}")

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------
    def _make_pool(self, freq_ghz: float,
                   cores: List[Core]) -> CorePoolScheduler:
        return CorePoolScheduler(
            self.env, cores, frequency_ghz=freq_ghz,
            name=f"pool{freq_ghz:.1f}@{self.server.server_id}",
            context_switch_s=self.config.context_switch_s,
            switch_on_idle=not self.config.run_to_completion,
            preemptive=True,
            per_job_frequency=True,
            switch_cost=lambda: self.config.kernel_switch_cost_s,
            freq_change_cost_s=self.config.kernel_switch_cost_s,
            on_complete=self._on_job_complete,
            on_core_released=self._core_released,
            cost_scale=self.dvfs_cost_scale,
            block_latency=self.rpc_latency_scale)

    def iter_pools(self) -> List[CorePoolScheduler]:
        """Every live pool, retiring ones included (observability)."""
        return self._pools + self._retiring

    def active_pools(self) -> List[CorePoolScheduler]:
        """Usable pools, sorted by frequency ascending; never empty."""
        usable = [p for p in self._pools if p.n_cores > 0]
        if not usable:
            usable = list(self._pools)
        return sorted(usable, key=lambda p: p.frequency_ghz)

    def pool_count(self) -> int:
        """Distinct active pools (the Fig. 21 metric)."""
        return len({p.frequency_ghz for p in self._pools if p.n_cores > 0})

    def note_demand(self, freq_ghz: float, run_seconds: float) -> None:
        """Dispatcher signal: one invocation wanted ``freq_ghz``."""
        self._demand[freq_ghz] = (self._demand.get(freq_ghz, 0.0)
                                  + max(run_seconds, 1e-6))

    def raise_pool_frequency(self, pool: CorePoolScheduler,
                             freq_ghz: float) -> None:
        """Boost a whole pool (dispatcher escalation strategy 2/3)."""
        tenancy = self.env.tenancy
        if tenancy is not None:
            freq_ghz = tenancy.clamp_freq(freq_ghz)
        if freq_ghz > pool.frequency_ghz:
            pool.set_frequency(freq_ghz,
                               cost_s=self.config.kernel_switch_cost_s)

    def apply_frequency_ceiling(self, ceiling_ghz) -> None:
        """Power-cap hook: retune every pool above the ceiling down to it.

        The kernel/MSR path the node controller already owns does the
        switch; busy cores stall for the usual transition cost. Lifting
        the cap (``None``) does nothing here — pools climb back through
        demand-driven refreshes and boosts.
        """
        if ceiling_ghz is None:
            return
        for pool in self._pools + self._retiring:
            if pool.frequency_ghz > ceiling_ghz + 1e-12:
                pool.set_frequency(ceiling_ghz,
                                   cost_s=self.config.kernel_switch_cost_s)

    # ------------------------------------------------------------------
    # NodeSystem interface
    # ------------------------------------------------------------------
    def submit(self, fn_model: FunctionModel, spec: InvocationSpec,
               deadline_s: Optional[float], benchmark: str,
               seniority_time_s: Optional[float] = None) -> Job:
        job = Job(self.env, spec, benchmark, arrival_s=self.env.now,
                  deadline_s=deadline_s, seniority_time_s=seniority_time_s)
        self._submit_with_container(fn_model, job, f"cold/{fn_model.name}",
                                    self._dispatch)
        return job

    @property
    def outstanding(self) -> int:
        return (sum(p.load for p in self._pools)
                + sum(p.load for p in self._retiring))

    def _dispatcher(self, fn_model: FunctionModel) -> EnergyAwareDispatcher:
        if fn_model.name not in self._dispatchers:
            self._dispatchers[fn_model.name] = EnergyAwareDispatcher(
                self, fn_model)
        return self._dispatchers[fn_model.name]

    def _dispatch(self, fn_model: FunctionModel, job: Job) -> None:
        self._dispatcher(fn_model).register(job)
        self._unstick_pools()

    def _core_released(self, core: Core) -> None:
        """A marked busy core finally freed: re-home it right away rather
        than letting it idle until the next refresh."""
        self._free.append(core)
        for pool in sorted(self._pools,
                           key=lambda p: p.n_cores
                           - self._targets.get(p.frequency_ghz, 0)):
            if pool.n_cores < self._targets.get(pool.frequency_ghz, 0):
                pool.add_core(self._free.pop())
                return

    def _unstick_pools(self) -> None:
        """Give a spare core to any loaded pool that lost all of its cores
        (transient state between refreshes)."""
        for pool in self._pools:
            if pool.load > 0 and pool.n_cores == 0 and self._free:
                pool.add_core(self._free.pop())

    def _on_job_complete(self, job: Job) -> None:
        if job.is_prewarm:
            return
        dispatcher = self._dispatchers.get(job.function_name)
        if dispatcher is not None:
            dispatcher.record_completion(job)
        if self.containers.is_warm(job.function_name):
            self.containers.touch(job.function_name)
        self.metrics.record_job(job)

    # ------------------------------------------------------------------
    # Prewarming (Section VI-E1)
    # ------------------------------------------------------------------
    def prewarm(self, fn_model: FunctionModel, budget_s: float,
                benchmark: str) -> None:
        if self.down:
            return
        if self.containers.state(fn_model.name) != "cold":
            return
        self.containers.begin_cold_start(fn_model.name)
        setup = fn_model.sample_cold_start_work(
            self.rng.stream(f"cold/{fn_model.name}"))
        spec = InvocationSpec(fn_model.name, [RunSegment(WorkUnit(0.0))])
        job = Job(self.env, spec, benchmark, arrival_s=self.env.now,
                  deadline_s=self.env.now + max(budget_s, 1e-3),
                  setup_work=setup)
        job.is_prewarm = True
        job.on_setup_done = (
            lambda name=fn_model.name: self._finish_prewarm(name, job))
        pool = self._prewarm_pool(fn_model.name, budget_s)
        if self.env.trace.enabled:
            self.env.trace.instant(
                "prewarm", self.track, function=fn_model.name,
                budget_s=budget_s, pool_ghz=pool.frequency_ghz)
        job.chosen_freq_ghz = pool.frequency_ghz
        job.registered_run_seconds = self._estimated_cold_seconds(
            fn_model.name, pool.frequency_ghz) or 0.0
        pool.submit(job)
        self._unstick_pools()

    def _estimated_cold_seconds(self, function_name: str,
                                freq_ghz: float) -> Optional[float]:
        ewma = self.store.cold_ewma(function_name)
        if not ewma.initialized:
            return None
        # Cold starts are compute-dominated: pure 1/f scaling.
        return ewma.forecast() * self.scale.max / freq_ghz

    def _prewarm_pool(self, function_name: str,
                      budget_s: float) -> CorePoolScheduler:
        """Minimal-frequency pool that finishes the cold start in budget.

        Before the cold-start duration is known, explore: pick pools of
        different frequencies across cold starts to populate the profile
        (Section VI-E1).
        """
        pools = self.active_pools()
        estimate = self._estimated_cold_seconds(function_name,
                                                self.scale.max)
        if estimate is None:
            index = int(self.rng.stream("prewarm/explore").integers(
                len(pools)))
            return pools[index]
        for pool in pools:
            cold = estimate * self.scale.max / pool.frequency_ghz
            if pool.estimated_queue_seconds() + cold <= budget_s:
                return pool
        return pools[-1]

    def _finish_prewarm(self, function_name: str, job: Job) -> None:
        self.containers.finish_cold_start(function_name)
        if job.freq_run_seconds:
            dominant = max(job.freq_run_seconds,
                           key=job.freq_run_seconds.get)
            at_max = job.t_run * dominant / self.scale.max
            self.store.cold_ewma(function_name).update(at_max)

    # ------------------------------------------------------------------
    # Elastic refresh (Section VI-D)
    # ------------------------------------------------------------------
    def _refresh_loop(self):
        while True:
            yield self.env.timeout(self.config.t_refresh_s)
            if self.down:
                continue
            ha = getattr(self.env, "ha", None)
            if ha is not None and not ha.authorize_resize(self):
                # Epoch fencing (repro.ha): no reachable leader holds a
                # fresh enough lease — freeze the pool set rather than
                # apply a resize a partitioned stale controller computed.
                continue
            self.refresh()

    # ------------------------------------------------------------------
    # Crash recovery (repro.faults)
    # ------------------------------------------------------------------
    def _abort_all_jobs(self) -> List[Job]:
        lost: List[Job] = []
        for pool in self._pools + self._retiring:
            lost.extend(pool.abort_all())
        return lost

    def _rebuild(self) -> None:
        """Reboot to the no-knowledge-yet default: one max-frequency pool.

        Every transient controller structure (pools, demand histograms,
        dispatchers, the free-core list) is rebuilt from scratch —
        ``abort_all`` left every core idle, so they all join the fresh
        pool. Function profiles live in the shared :class:`ProfileStore`
        (a persistent service in the paper's design), so learned behaviour
        survives the reboot; EWT counters do not, which is exactly the
        no-leak property the invariant tests check.
        """
        self._free = []
        self._retiring = []
        self._targets = {}
        self._demand = {}
        self._demand_ewma = {}
        self._dispatchers = {}
        self._pools = [self._make_pool(self.scale.max,
                                       list(self.server.cores))]

    # ------------------------------------------------------------------
    # Guard hooks (repro.guard): checkpoints and the refresh watchdog
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Optional[Dict[str, object]]:
        """Snapshot the learned control state the reboot would lose.

        Pool shape (``_targets``) and the smoothed demand histogram are
        the state the controller spends several ``T_refresh`` windows
        re-learning after a cold reboot. Function profiles need no
        snapshot: they live in the shared :class:`ProfileStore`, which
        survives crashes by design.
        """
        return {
            "targets": dict(self._targets),
            "demand_ewma": dict(self._demand_ewma),
        }

    def restore_state(self, state: Dict[str, object]) -> bool:
        """Resume the pool shape from a checkpoint (post-reboot).

        The smoothed demand histogram is re-applied through the normal
        refresh machinery, so the restored pool set is exactly what the
        next refresh would have computed from that demand.
        """
        ewma = state.get("demand_ewma") or {}
        self._demand_ewma = {float(level): float(weight)
                             for level, weight in ewma.items()}
        if self._demand_ewma:
            self._apply_demand(dict(self._demand_ewma))
        return True

    def watchdog_check(self, factor: float) -> bool:
        stale_after = factor * self.config.t_refresh_s
        if not self.config.elastic:
            return False
        if self.env.now - self.last_refresh_s <= stale_after:
            return False
        ha = getattr(self.env, "ha", None)
        if ha is not None and not ha.authorize_resize(self):
            # A deliberately fenced/frozen control loop is not stuck; the
            # watchdog must not force a resize past the epoch fence.
            return False
        self.refresh()
        return True

    def refresh(self) -> None:
        """Recompute the pool set from the window's demand and stats."""
        self.last_refresh_s = self.env.now
        stats = {id(pool): pool.stats.reset()
                 for pool in self._pools + self._retiring}
        demand, self._demand = self._demand, {}

        # Paper rules (Section VI-D): pools whose invocations often needed
        # temporary boosts shift demand one level up; pools that often took
        # invocations that could have run lower shift demand one level down
        # (which is how lower-frequency pools come into existence).
        for pool in self._pools:
            pool_stats = stats[id(pool)]
            level = pool.frequency_ghz
            if pool_stats.served == 0 or level not in demand:
                continue
            # The two signals act independently: a mixed pool (some jobs
            # needed boosts, others wanted lower) sheds demand in BOTH
            # directions — that split is precisely how a single hot pool
            # differentiates into several.
            if (pool_stats.boosted
                    > self.config.boost_promote_fraction * pool_stats.served):
                higher = self.scale.next_higher(level)
                if higher is not None:
                    moved = 0.5 * demand[level]
                    demand[level] -= moved
                    demand[higher] = demand.get(higher, 0.0) + moved
            if pool_stats.wanted_lower_freq > 0.25 * pool_stats.served:
                lower = self.scale.next_lower(level)
                if lower is not None:
                    moved = 0.5 * demand[level]
                    demand[level] -= moved
                    demand[lower] = demand.get(lower, 0.0) + moved

        # Capacity must also cover the work already sitting in the pools
        # (their EWT counters), or a pool whose fresh demand dipped would
        # lose its cores while its queue still drains. This mirrors the
        # paper's "longer waiting times receive higher weights" rule.
        for pool in self._pools:
            backlog = pool.ewt_seconds
            if backlog > 0:
                demand[pool.frequency_ghz] = (
                    demand.get(pool.frequency_ghz, 0.0) + backlog)

        if not demand:
            # Idle window: keep the current shape.
            demand = {pool.frequency_ghz: float(max(pool.load, 1))
                      for pool in self._pools}
        demand = {self.scale.ceil(level): weight
                  for level, weight in demand.items()}

        # Smooth across windows so a single bursty window cannot trigger a
        # wholesale core migration.
        smoothed: Dict[float, float] = {}
        for level in set(demand) | set(self._demand_ewma):
            smoothed[level] = (0.5 * self._demand_ewma.get(level, 0.0)
                               + 0.5 * demand.get(level, 0.0))
        total = sum(smoothed.values())
        # Forget negligible levels so stale pools eventually dissolve.
        smoothed = {level: weight for level, weight in smoothed.items()
                    if weight > 0.01 * total}
        self._demand_ewma = dict(smoothed)

        audit = self.env.audit

        def pool_targets() -> Dict[str, int]:
            # Keyed by the pools' trace names, so audit records join
            # directly against queue-phase spans in `repro explain`.
            sid = self.server.server_id
            return {f"pool{level:.1f}@{sid}": count
                    for level, count in sorted(self._targets.items())}

        prev_targets = pool_targets() if audit is not None else None
        self._apply_demand(dict(smoothed))
        self.pool_count_samples.append((self.env.now, self.pool_count()))
        if self.env.trace.enabled:
            self.env.trace.instant(
                "pool_retune", self.track,
                pools=self.pool_count(),
                targets={f"{level:.2f}": count
                         for level, count in sorted(self._targets.items())},
                demand={f"{level:.2f}": round(weight, 4)
                        for level, weight in sorted(smoothed.items())})
            self.env.trace.counter(self.track, "pool_count",
                                   self.pool_count())
        if audit is not None:
            new_targets = pool_targets()
            if new_targets != prev_targets:
                audit.record(
                    "pool_retune", self.track,
                    inputs={"demand": {f"{level:.2f}": round(weight, 4)
                                       for level, weight
                                       in sorted(smoothed.items())},
                            "targets": prev_targets},
                    action={"targets": new_targets},
                    alternatives=[{"targets": prev_targets,
                                   "rejected": "window demand shifted"}],
                    reason="elastic refresh resized the frequency pools"
                           " to the smoothed window demand")

    def _apply_demand(self, demand: Dict[float, float]) -> None:
        tenancy = self.env.tenancy
        if tenancy is not None:
            # Power cap (repro.tenancy): demand above the frequency
            # ceiling folds into the ceiling level (no pool may target a
            # capped-out frequency), and pool sizing only staffs the
            # usable core fraction — the rest sit idle, which is the
            # governor's pool-shrinking actuator.
            ceiling = tenancy.freq_ceiling_ghz()
            if ceiling is not None:
                folded: Dict[float, float] = {}
                for level, weight in demand.items():
                    capped = min(level, ceiling)
                    folded[capped] = folded.get(capped, 0.0) + weight
                demand = folded
        # Cap the number of levels by folding the smallest demand into the
        # next higher level (running faster is always deadline-safe).
        levels = sorted(demand)
        while len(levels) > self.config.max_pools:
            smallest = min(levels, key=lambda level: demand[level])
            higher = [level for level in levels if level > smallest]
            target = min(higher) if higher else levels[-2]
            demand[target] = demand.get(target, 0.0) + demand.pop(smallest)
            levels.remove(smallest)

        n_cores = self.server.n_cores
        if tenancy is not None:
            n_cores = tenancy.capped_cores(n_cores)
        # Square-root staffing: allocate each level its offered load plus
        # sqrt-headroom (normalised to the server size). Pure proportional
        # sizing equalises utilisation, which leaves every pool's queue
        # roughly one job long — fatal for short-deadline invocations
        # sharing a level with multi-second jobs.
        offered = {level: weight / self.config.t_refresh_s
                   for level, weight in demand.items()}
        weights = {level: load + 2.0 * (load ** 0.5)
                   for level, load in offered.items()}
        total_weight = sum(weights.values())
        exact = {level: n_cores * weight / total_weight
                 for level, weight in weights.items()}
        targets = {level: max(1, int(value)) for level, value in exact.items()}
        leftover = n_cores - sum(targets.values())
        for level in sorted(exact, key=lambda l: exact[l] - int(exact[l]),
                            reverse=True):
            if leftover <= 0:
                break
            targets[level] += 1
            leftover -= 1
        while sum(targets.values()) > n_cores:
            richest = max(targets, key=targets.get)
            if targets[richest] <= 1:
                break
            targets[richest] -= 1

        # Reconcile pool objects with the target level set.
        existing: Dict[float, CorePoolScheduler] = {}
        for pool in self._pools:
            if pool.frequency_ghz in existing:
                self._retiring.append(pool)  # collision after a boost
            else:
                existing[pool.frequency_ghz] = pool
        new_pools: List[CorePoolScheduler] = []
        for level in sorted(targets):
            pool = existing.pop(level, None)
            if pool is None:
                pool = self._make_pool(level, [])
            new_pools.append(pool)
        self._retiring.extend(existing.values())
        self._pools = new_pools
        self._targets = dict(targets)

        self._migrate_retiring()
        self._harvest_cores(targets)
        self._distribute_cores(targets)
        self._unstick_pools()

    def _migrate_retiring(self) -> None:
        """Move retiring pools' ready queues into surviving pools.

        Without this, a displaced pool strands its whole queue on the one
        core it keeps — the worst source of tail latency.
        """
        for pool in list(self._retiring):
            for job in pool.drain_ready():
                # Flags were already counted in the original pool's stats.
                job.boosted = False
                job.wanted_lower_freq = False
                self._pool_at_or_above(job.chosen_freq_ghz).submit(job)

    def _pool_at_or_above(self, freq_ghz: Optional[float]) -> CorePoolScheduler:
        pools = self.active_pools()
        if freq_ghz is not None:
            for pool in pools:
                if pool.frequency_ghz >= freq_ghz - 1e-12:
                    return pool
        return pools[-1]

    def _shed_down_to(self, pool: CorePoolScheduler, target: int) -> None:
        """Release idle cores now; mark ALL remaining excess busy cores so
        they leave as soon as their current job finishes (a busy pool must
        shed its whole surplus within roughly one job length, not one core
        per refresh)."""
        excess = pool.n_cores - target
        while excess > 0:
            core = pool.release_idle_core()
            if core is not None:
                self._free.append(core)
                excess -= 1
                continue
            if not pool.request_core_removal():
                break
            excess -= 1

    def _harvest_cores(self, targets: Dict[float, int]) -> None:
        for pool in list(self._retiring):
            self._shed_down_to(pool, 1 if pool.load > 0 else 0)
            if pool.load == 0 and pool.n_cores == 0:
                self._retiring.remove(pool)
        for pool in self._pools:
            self._shed_down_to(pool, targets[pool.frequency_ghz])

    def _distribute_cores(self, targets: Dict[float, int]) -> None:
        # Busiest pools first so scarce cores go where the queues are.
        for pool in sorted(self._pools, key=lambda p: -p.load):
            target = targets[pool.frequency_ghz]
            while pool.n_cores < target and self._free:
                pool.add_core(self._free.pop())
