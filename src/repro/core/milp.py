"""Mixed-Integer Linear Programming by branch and bound.

The Workflow Controller uses MILP to pick per-function frequencies that
minimise total energy subject to the end-to-end SLO (Section VI-A; the
paper uses PuLP). We implement the solver ourselves: LP relaxations via
``scipy.optimize.linprog`` (HiGHS) inside a best-first branch-and-bound on
the fractional integer variables.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.obs.prof import profiled

#: Integrality tolerance.
_INT_TOL = 1e-6


@dataclass
class MilpProblem:
    """minimise ``c @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x = b_eq``.

    ``integer_mask[i]`` marks variable *i* as integral; the rest are
    continuous. ``bounds`` are per-variable ``(lo, hi)`` pairs.
    """

    c: np.ndarray
    integer_mask: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    bounds: Optional[List[Tuple[float, float]]] = None

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float)
        self.integer_mask = np.asarray(self.integer_mask, dtype=bool)
        if self.c.ndim != 1:
            raise ValueError("c must be a vector")
        if self.integer_mask.shape != self.c.shape:
            raise ValueError("integer_mask must align with c")
        if self.bounds is None:
            self.bounds = [(0.0, None)] * len(self.c)
        if len(self.bounds) != len(self.c):
            raise ValueError("bounds must align with c")

    @property
    def n_vars(self) -> int:
        return len(self.c)


@dataclass
class MilpSolution:
    """Solver outcome."""

    status: str  # "optimal" | "infeasible"
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    nodes_explored: int = 0
    #: The node budget ran out with branches still open: the answer (if
    #: any) is the best incumbent, not a proven optimum.
    exhausted: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "optimal"


def _solve_relaxation(problem: MilpProblem,
                      bounds: Sequence[Tuple[float, Optional[float]]]):
    result = linprog(problem.c, A_ub=problem.a_ub, b_ub=problem.b_ub,
                     A_eq=problem.a_eq, b_eq=problem.b_eq,
                     bounds=list(bounds), method="highs")
    if not result.success:
        return None
    return result


@profiled("core.milp")
def solve_milp(problem: MilpProblem, max_nodes: int = 20_000) -> MilpSolution:
    """Best-first branch and bound. Exact for feasible bounded problems."""
    counter = itertools.count()
    root_bounds = tuple(problem.bounds)
    root = _solve_relaxation(problem, root_bounds)
    if root is None:
        return MilpSolution(status="infeasible")
    # Heap of (lp objective, tiebreak, bounds) — expand cheapest bound first.
    frontier = [(root.fun, next(counter), root_bounds, root)]
    best_x: Optional[np.ndarray] = None
    best_obj = np.inf
    explored = 0

    while frontier and explored < max_nodes:
        lower_bound, _, bounds, relaxed = heapq.heappop(frontier)
        if lower_bound >= best_obj - 1e-9:
            continue  # cannot improve on the incumbent
        explored += 1
        x = relaxed.x
        fractional = [
            i for i in np.nonzero(problem.integer_mask)[0]
            if abs(x[i] - round(x[i])) > _INT_TOL
        ]
        if not fractional:
            if relaxed.fun < best_obj:
                best_obj = relaxed.fun
                best_x = x.copy()
            continue
        # Branch on the most fractional variable.
        branch_var = max(fractional, key=lambda i: abs(x[i] - round(x[i]))
                         and min(x[i] - np.floor(x[i]),
                                 np.ceil(x[i]) - x[i]))
        value = x[branch_var]
        lo, hi = bounds[branch_var]
        for new_lo, new_hi in (
                (lo, float(np.floor(value))),
                (float(np.ceil(value)), hi)):
            if new_hi is not None and new_lo is not None and new_lo > new_hi:
                continue
            child_bounds = list(bounds)
            child_bounds[branch_var] = (new_lo, new_hi)
            child = _solve_relaxation(problem, child_bounds)
            if child is None or child.fun >= best_obj - 1e-9:
                continue
            heapq.heappush(frontier,
                           (child.fun, next(counter),
                            tuple(child_bounds), child))

    exhausted = bool(frontier) and explored >= max_nodes
    if best_x is None:
        return MilpSolution(status="infeasible", nodes_explored=explored,
                            exhausted=exhausted)
    # Snap integers exactly.
    best_x = best_x.copy()
    for i in np.nonzero(problem.integer_mask)[0]:
        best_x[i] = round(best_x[i])
    return MilpSolution(status="optimal", x=best_x,
                        objective=float(best_obj), nodes_explored=explored,
                        exhausted=exhausted)
