"""The assembled EcoFaaS system (Fig. 8)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import EcoFaaSConfig
from repro.core.node import EcoFaaSNode
from repro.core.profiles import ProfileStore
from repro.core.workflow_controller import WorkflowController
from repro.hardware.server import Server
from repro.platform.cluster import Cluster
from repro.platform.metrics import MetricsCollector
from repro.platform.system import ClusterSystem
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.applications import Workflow


class EcoFaaSSystem(ClusterSystem):
    """EcoFaaS: Workflow Controllers + elastic Core Pools + dispatchers."""

    name = "EcoFaaS"

    def __init__(self, config: Optional[EcoFaaSConfig] = None):
        self.config = config or EcoFaaSConfig()
        self._store: Optional[ProfileStore] = None
        self._env: Optional[Environment] = None
        self._controllers: Dict[str, WorkflowController] = {}

    @property
    def store(self) -> ProfileStore:
        if self._store is None:
            raise RuntimeError("no node created yet; the store is lazy")
        return self._store

    def make_node(self, env: Environment, server: Server,
                  metrics: MetricsCollector, rng: RngRegistry) -> EcoFaaSNode:
        if self._store is None:
            self._store = ProfileStore(server.scale, server.power,
                                       self.config, seed=rng.seed)
            self._env = env
        return EcoFaaSNode(env, server, metrics, rng, self.config,
                           self._store)

    def controller(self, workflow: Workflow) -> WorkflowController:
        """The per-application Workflow Controller (created lazily)."""
        if self._env is None or self._store is None:
            raise RuntimeError("create nodes before requesting controllers")
        if workflow.name not in self._controllers:
            self._controllers[workflow.name] = WorkflowController(
                self._env, workflow, self._store, self.config)
        return self._controllers[workflow.name]

    def function_deadlines(self, workflow: Workflow, arrival_s: float,
                           slo_s: float) -> Optional[Dict[str, float]]:
        return self.controller(workflow).deadlines(arrival_s, slo_s)

    def on_workflow_arrival(self, cluster: Cluster, workflow: Workflow,
                            arrival_s: float,
                            deadlines: Optional[Dict[str, float]]) -> None:
        if self.config.prewarm and deadlines is not None:
            self.controller(workflow).prewarm(cluster, arrival_s, deadlines)
