"""Cluster-wide per-function profile store (heterogeneity-aware).

In the paper every Function Dispatcher profiles locally and ships its
History Table to the Workflow Controller every ``T_update``; functionally
the controller and dispatchers share one view of each function's behaviour.
We keep that shared view directly — one :class:`FrequencyProfile` per
*(machine type, function)* pair, since a Delay-Power Table measured on one
microarchitecture does not transfer to another (Section VI-E3).

For functions not yet profiled on some machine type, the store bridges
predictions from a profiled type through the paper's transfer-learning
regression: a linear model fitted over the functions measured on both
types rescales the source prediction. With fewer than two common
functions the bridge falls back to an identity ratio (equivalent to the
paper's short per-type profiling period).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import EcoFaaSConfig
from repro.core.ewma import AdaptiveEwma
from repro.core.history import HistoryTable
from repro.core.predictor import FrequencyProfile
from repro.core.transfer import TransferModel
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.workloads.model import FunctionModel

#: Default machine type of a homogeneous cluster.
DEFAULT_TYPE = "haswell"


class ProfileStore:
    """Lazily-created per-(machine type, function) profiles."""

    def __init__(self, scale: FrequencyScale, power: PowerModel,
                 config: EcoFaaSConfig, seed: int = 0):
        self.scale = scale
        self.power = power
        self.config = config
        self.seed = seed
        self._profiles: Dict[Tuple[str, str], FrequencyProfile] = {}
        self._queue_ewma: Dict[str, AdaptiveEwma] = {}
        self._cold_ewma: Dict[str, AdaptiveEwma] = {}
        self._level_queue_ewma: Dict[float, AdaptiveEwma] = {}
        #: Cached transfer models keyed by (src_type, dst_type) plus the
        #: total observation count they were fitted at.
        self._bridges: Dict[Tuple[str, str], Tuple[int, Optional[TransferModel]]] = {}
        self._total_observations = 0

    # ------------------------------------------------------------------
    # Profile access
    # ------------------------------------------------------------------
    def profile(self, fn_model: FunctionModel,
                machine_type: str = DEFAULT_TYPE) -> FrequencyProfile:
        """The function's profile on one machine type (created lazily)."""
        key = (machine_type, fn_model.name)
        if key not in self._profiles:
            feature_names = []
            use_mlp = False
            if (self.config.use_input_model
                    and fn_model.input_model is not None):
                feature_names = fn_model.input_model.space.feature_names
                use_mlp = True
            self._profiles[key] = FrequencyProfile(
                scale=self.scale, power=self.power,
                history=HistoryTable(self.config.history_capacity),
                use_mlp=use_mlp, feature_names=feature_names,
                seed=self.seed)
        return self._profiles[key]

    def profile_by_name(self, function_name: str,
                        machine_type: Optional[str] = None
                        ) -> FrequencyProfile:
        """An existing profile; without a type, the best-observed one."""
        if machine_type is not None:
            try:
                return self._profiles[(machine_type, function_name)]
            except KeyError:
                raise KeyError(
                    f"no profile yet for {function_name!r}"
                    f" on {machine_type!r}") from None
        candidates = [(profile.observations, mtype, profile)
                      for (mtype, name), profile in self._profiles.items()
                      if name == function_name]
        if not candidates:
            raise KeyError(f"no profile yet for {function_name!r}")
        candidates.sort(key=lambda c: (-c[0], c[1]))
        return candidates[0][2]

    def has_profile(self, function_name: str) -> bool:
        return any(name == function_name
                   for _, name in self._profiles)

    def note_observation(self) -> None:
        """Bridge-cache invalidation tick (called by dispatchers)."""
        self._total_observations += 1

    def ready(self, function_name: str,
              machine_type: str = DEFAULT_TYPE) -> bool:
        """Trustworthy on this machine type, directly or via a bridge."""
        if self._ready_direct(function_name, machine_type):
            return True
        return self._bridge_source(function_name, machine_type) is not None

    def _ready_direct(self, function_name: str, machine_type: str) -> bool:
        profile = self._profiles.get((machine_type, function_name))
        return (profile is not None
                and profile.observations
                >= self.config.min_profile_observations)

    def _types_with(self, function_name: str) -> List[str]:
        return [mtype for (mtype, name) in self._profiles
                if name == function_name
                and self._ready_direct(name, mtype)]

    # ------------------------------------------------------------------
    # Transfer bridging (Section VI-E3)
    # ------------------------------------------------------------------
    def _bridge_source(self, function_name: str,
                       machine_type: str) -> Optional[str]:
        """A machine type whose profile can stand in for ``machine_type``."""
        types = self._types_with(function_name)
        if not types:
            return None
        if DEFAULT_TYPE in types:
            return DEFAULT_TYPE
        return sorted(types)[0]

    def _bridge_ratio(self, src_type: str, dst_type: str) -> float:
        """Fitted src→dst run-time ratio (1.0 until two common functions)."""
        if src_type == dst_type:
            return 1.0
        cache_key = (src_type, dst_type)
        cached = self._bridges.get(cache_key)
        if cached is not None and cached[0] == self._total_observations:
            model = cached[1]
            return model.slope if model is not None else 1.0
        src_vals, dst_vals = [], []
        for (mtype, name), profile in self._profiles.items():
            if mtype != src_type:
                continue
            if not self._ready_direct(name, src_type):
                continue
            if not self._ready_direct(name, dst_type):
                continue
            other = self._profiles[(dst_type, name)]
            src_vals.append(profile.predict_t_run(self.scale.max))
            dst_vals.append(other.predict_t_run(self.scale.max))
        model = None
        if len(src_vals) >= 2:
            try:
                model = TransferModel.fit(src_vals, dst_vals)
            except ValueError:
                model = None
        self._bridges[cache_key] = (self._total_observations, model)
        return model.slope if model is not None else 1.0

    def predict_t_run(self, function_name: str, machine_type: str,
                      freq_ghz: float,
                      features: Optional[dict] = None) -> float:
        """T_Run prediction on ``machine_type``, bridged when necessary."""
        if self._ready_direct(function_name, machine_type):
            return self._profiles[(machine_type, function_name)].predict_t_run(
                freq_ghz, features)
        source = self._bridge_source(function_name, machine_type)
        if source is None:
            raise KeyError(f"no usable profile for {function_name!r}")
        base = self._profiles[(source, function_name)].predict_t_run(
            freq_ghz, features)
        return base * self._bridge_ratio(source, machine_type)

    def predict_t_block(self, function_name: str, machine_type: str,
                        features: Optional[dict] = None) -> float:
        """T_Block prediction (I/O time barely depends on the machine)."""
        if self._ready_direct(function_name, machine_type):
            return self._profiles[(machine_type, function_name)
                                  ].predict_t_block(features)
        source = self._bridge_source(function_name, machine_type)
        if source is None:
            raise KeyError(f"no usable profile for {function_name!r}")
        return self._profiles[(source, function_name)].predict_t_block(
            features)

    def predict_energy(self, function_name: str, machine_type: str,
                       freq_ghz: float,
                       features: Optional[dict] = None) -> float:
        """Active-energy prediction on ``machine_type``."""
        if self._ready_direct(function_name, machine_type):
            return self._profiles[(machine_type, function_name)
                                  ].predict_energy(freq_ghz, features)
        t_run = self.predict_t_run(function_name, machine_type, freq_ghz,
                                   features)
        power_w = (self.power.core_active_power(freq_ghz)
                   + self.power.dram_active_power(1))
        return t_run * power_w

    # ------------------------------------------------------------------
    # Shared EWMAs (machine-independent signals)
    # ------------------------------------------------------------------
    def queue_ewma(self, function_name: str) -> AdaptiveEwma:
        """Smoothed observed T_Queue (feeds the DPT's time entries)."""
        if function_name not in self._queue_ewma:
            self._queue_ewma[function_name] = AdaptiveEwma()
        return self._queue_ewma[function_name]

    def level_queue_ewma(self, freq_ghz: float) -> AdaptiveEwma:
        """Smoothed observed T_Queue at pools of one frequency level.

        Lower-frequency pools hold longer queues (their jobs run slower),
        so planning decisions must see a *per-level* queue estimate — a
        single global T_Queue would let the MILP plan tight functions onto
        hopelessly congested slow pools.
        """
        if freq_ghz not in self._level_queue_ewma:
            self._level_queue_ewma[freq_ghz] = AdaptiveEwma()
        return self._level_queue_ewma[freq_ghz]

    def level_queue_estimate(self, freq_ghz: float) -> float:
        """Non-negative T_Queue estimate for a level (0 before any data)."""
        ewma = self.level_queue_ewma(freq_ghz)
        return max(0.0, ewma.forecast_or(0.0))

    def cold_ewma(self, function_name: str) -> AdaptiveEwma:
        """Smoothed cold-start duration, normalised to the top frequency."""
        if function_name not in self._cold_ewma:
            self._cold_ewma[function_name] = AdaptiveEwma()
        return self._cold_ewma[function_name]
