"""A three-layer ReLU MLP for input-aware prediction, in NumPy.

Section VI-E2: "The model we use is lightweight, has three fully connected
(linear) layers and ReLU activations, and takes the features of all the
inputs of the function ... trained online using live traffic."

The regressor standardises inputs with running statistics, optionally
predicts in log space (execution times are positive and multiplicative),
and trains online with Adam. Prediction cost is a couple of small matrix
multiplies — tens of microseconds, as the paper reports.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


class _RunningStandardizer:
    """Welford-style running mean/variance per feature."""

    def __init__(self, n_features: int):
        self.count = 0
        self.mean = np.zeros(n_features)
        self.m2 = np.zeros(n_features)

    def update(self, rows: np.ndarray) -> None:
        for row in rows:
            self.count += 1
            delta = row - self.mean
            self.mean += delta / self.count
            self.m2 += delta * (row - self.mean)

    def transform(self, rows: np.ndarray) -> np.ndarray:
        if self.count < 2:
            return rows - self.mean
        std = np.sqrt(self.m2 / (self.count - 1))
        std[std < 1e-9] = 1.0
        return (rows - self.mean) / std


class MLPRegressor:
    """input → hidden → hidden → scalar, ReLU activations, Adam updates."""

    def __init__(self, n_inputs: int, hidden: Tuple[int, int] = (32, 16),
                 learning_rate: float = 1e-2, log_target: bool = True,
                 seed: int = 0):
        if n_inputs < 1:
            raise ValueError(f"need at least one input, got {n_inputs}")
        if len(hidden) != 2 or min(hidden) < 1:
            raise ValueError(f"hidden must be two positive sizes: {hidden}")
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive: {learning_rate}")
        self.n_inputs = n_inputs
        self.log_target = log_target
        self.learning_rate = learning_rate
        rng = np.random.default_rng(seed)
        h1, h2 = hidden
        # He initialisation for the ReLU layers.
        self._params = [
            rng.normal(0, np.sqrt(2.0 / n_inputs), size=(n_inputs, h1)),
            np.zeros(h1),
            rng.normal(0, np.sqrt(2.0 / h1), size=(h1, h2)),
            np.zeros(h2),
            rng.normal(0, np.sqrt(2.0 / h2), size=(h2, 1)),
            np.zeros(1),
        ]
        self._adam_m = [np.zeros_like(p) for p in self._params]
        self._adam_v = [np.zeros_like(p) for p in self._params]
        self._adam_t = 0
        self._standardizer = _RunningStandardizer(n_inputs)
        self._target_mean = 0.0
        self._target_m2 = 0.0
        self._target_count = 0
        self.samples_seen = 0

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def _forward(self, x: np.ndarray):
        w1, b1, w2, b2, w3, b3 = self._params
        z1 = x @ w1 + b1
        a1 = np.maximum(z1, 0.0)
        z2 = a1 @ w2 + b2
        a2 = np.maximum(z2, 0.0)
        out = a2 @ w3 + b3
        return out, (x, z1, a1, z2, a2)

    def _backward(self, cache, grad_out: np.ndarray):
        x, z1, a1, z2, a2 = cache
        w1, b1, w2, b2, w3, b3 = self._params
        grads = [None] * 6
        grads[4] = a2.T @ grad_out
        grads[5] = grad_out.sum(axis=0)
        da2 = grad_out @ w3.T
        dz2 = da2 * (z2 > 0)
        grads[2] = a1.T @ dz2
        grads[3] = dz2.sum(axis=0)
        da1 = dz2 @ w2.T
        dz1 = da1 * (z1 > 0)
        grads[0] = x.T @ dz1
        grads[1] = dz1.sum(axis=0)
        return grads

    def _adam_step(self, grads) -> None:
        self._adam_t += 1
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        lr = self.learning_rate
        for i, grad in enumerate(grads):
            self._adam_m[i] = beta1 * self._adam_m[i] + (1 - beta1) * grad
            self._adam_v[i] = beta2 * self._adam_v[i] + (1 - beta2) * grad ** 2
            m_hat = self._adam_m[i] / (1 - beta1 ** self._adam_t)
            v_hat = self._adam_v[i] / (1 - beta2 ** self._adam_t)
            self._params[i] -= lr * m_hat / (np.sqrt(v_hat) + eps)

    # ------------------------------------------------------------------
    # Target normalisation
    # ------------------------------------------------------------------
    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        if self.log_target:
            if np.any(y <= 0):
                raise ValueError("log-target model needs positive targets")
            y = np.log(y)
        for value in y:
            self._target_count += 1
            delta = value - self._target_mean
            self._target_mean += delta / self._target_count
            self._target_m2 += delta * (value - self._target_mean)
        return (y - self._target_mean) / self._target_std()

    def _target_std(self) -> float:
        if self._target_count < 2:
            return 1.0
        std = float(np.sqrt(self._target_m2 / (self._target_count - 1)))
        return std if std > 1e-9 else 1.0

    def _decode(self, out: np.ndarray) -> np.ndarray:
        decoded = out * self._target_std() + self._target_mean
        if self.log_target:
            # Clamp the log-space output: extreme extrapolations must not
            # overflow exp (callers clamp to a sane band anyway).
            decoded = np.exp(np.clip(decoded, -50.0, 50.0))
        return decoded

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def partial_fit(self, x: Sequence[Sequence[float]],
                    y: Sequence[float], epochs: int = 1) -> float:
        """One (or a few) online gradient steps on a mini-batch.

        Returns the final mean-squared error in normalised target space.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"batch mismatch: {x.shape[0]} inputs, {y.shape[0]} targets")
        if x.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} features, got {x.shape[1]}")
        self._standardizer.update(x)
        x_std = self._standardizer.transform(x)
        y_norm = self._encode_targets(y).reshape(-1, 1)
        self.samples_seen += len(y)
        mse = 0.0
        for _ in range(max(1, epochs)):
            out, cache = self._forward(x_std)
            residual = out - y_norm
            mse = float(np.mean(residual ** 2))
            grads = self._backward(cache, 2.0 * residual / len(y_norm))
            self._adam_step(grads)
        return mse

    def predict(self, x: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict targets for a batch of feature rows."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} features, got {x.shape[1]}")
        x_std = self._standardizer.transform(x)
        out, _ = self._forward(x_std)
        return self._decode(out).reshape(-1)

    def predict_one(self, features: Sequence[float]) -> float:
        return float(self.predict([list(features)])[0])
