"""The Energy-Aware Function Dispatcher (Sections VI-B, VI-D).

One dispatcher manages one function's container on one node. For every
invocation it:

1. predicts ``T_Run(f)`` / ``T_Block`` / ``Energy(f)`` from the function's
   profile (EWMA or input-aware MLP), applying any configured
   overprediction error (the Fig. 19 knob);
2. estimates ``T_Queue`` per core pool from the pool's EWT counter;
3. registers the invocation with the cheapest pool whose frequency still
   meets the function's absolute deadline;
4. when no pool fits, applies the three escalation strategies of Section
   VI-D in order: boost only this invocation at its turn; temporarily
   raise a whole pool; or take the shortest queue at the maximum
   frequency.

Cold invocations (no usable profile yet) run at the highest frequency, as
the paper prescribes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.predictor import FrequencyProfile
from repro.platform.job import Job
from repro.platform.scheduler import CorePoolScheduler
from repro.workloads.model import FunctionModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import EcoFaaSNode


class EnergyAwareDispatcher:
    """Per-function, per-node frequency selection and pool registration."""

    def __init__(self, node: "EcoFaaSNode", fn_model: FunctionModel):
        self.node = node
        self.fn_model = fn_model
        self.machine_type = node.server.machine_type
        self.profile: FrequencyProfile = node.store.profile(
            fn_model, self.machine_type)
        #: Counters for Section VIII-style reporting.
        self.registered = 0
        self.boost_strategy_counts = [0, 0, 0]

    # ------------------------------------------------------------------
    # Prediction wrappers
    # ------------------------------------------------------------------
    def _overpredict(self, value: float) -> float:
        return value * (1.0 + self.node.config.overprediction_error)

    def _sanitize(self, kind: str, value: float) -> float:
        """Safe mode (repro.guard): screen one prediction if armed."""
        guard = self.node.env.guard
        if guard is None:
            return value
        return guard.sanitize_prediction(self.fn_model.name, kind, value,
                                         self.node.track)

    def _predict_t_run(self, freq: float, job: Job) -> float:
        return self._sanitize(f"t_run@{freq:.2f}", self._overpredict(
            self.node.store.predict_t_run(
                self.fn_model.name, self.machine_type, freq,
                job.spec.features)))

    def _predict_t_block(self, job: Job) -> float:
        return self._sanitize("t_block", self.node.store.predict_t_block(
            self.fn_model.name, self.machine_type, job.spec.features))

    def _predict_energy(self, freq: float, job: Job) -> float:
        return self._sanitize(f"energy@{freq:.2f}",
                              self.node.store.predict_energy(
                                  self.fn_model.name, self.machine_type,
                                  freq, job.spec.features))

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, job: Job) -> None:
        """Choose a frequency and a pool for ``job`` and submit it."""
        self.registered += 1
        ready = self.node.store.ready(self.fn_model.name,
                                      self.machine_type)
        if not ready or job.cold_start or job.deadline_s is None:
            # No trustworthy profile, a critical-path cold start, or a
            # best-effort request: highest possible frequency (Section
            # VI-B / VI-E1).
            self._submit_at_max(job)
            return
        guard = self.node.env.guard
        if guard is not None and guard.dpt_stale(self.fn_model.name):
            # Safe mode: the profile has gone stale — pin to the top
            # frequency (always deadline-safe) until fresh data arrives.
            guard.record_freq_pin(self.fn_model.name, self.node.track)
            self._submit_at_max(job)
            return
        self._register_profiled(job)

    def _submit_at_max(self, job: Job) -> None:
        scale = self.node.scale
        pools = self.node.active_pools()
        pool = pools[-1]  # highest frequency available
        job.chosen_freq_ghz = scale.max
        if self.node.store.ready(self.fn_model.name, self.machine_type):
            job.registered_run_seconds = self._predict_t_run(scale.max, job)
        else:
            job.registered_run_seconds = 0.0
        if abs(pool.frequency_ghz - scale.max) > 1e-12:
            job.boosted = True  # the job forces the core up at its turn
        self._submit(pool, job)

    def _submit(self, pool: CorePoolScheduler, job: Job) -> None:
        """Register with the pool, accounting demand where the job was
        actually placed (the node controller sizes pools from placement,
        then shifts levels using the boost / wanted-lower signals)."""
        tenancy = self.node.env.tenancy
        if tenancy is not None:
            # Power-cap ceiling (repro.tenancy): demand accounting and
            # EWT must reflect the speed the job will actually get.
            job.chosen_freq_ghz = tenancy.clamp_freq(job.chosen_freq_ghz)
        self.node.note_demand(job.chosen_freq_ghz,
                              job.registered_run_seconds or 0.0)
        pool.submit(job)

    def _register_profiled(self, job: Job) -> None:
        scale = self.node.scale
        now = self.node.env.now
        t_block = self._predict_t_block(job)
        budget = (job.deadline_s - now) * self.node.config.deadline_margin
        pools = self.node.active_pools()
        job.dispatch_correction = self._make_correction(job, t_block)

        # The function's pool-independent optimal level (for demand stats
        # and the wanted-lower signal): cheapest level that would fit *had
        # an uncongested pool at that level existed* — this is the paper's
        # "could have been executed at a lower frequency if an appropriate
        # core pool had been available" signal, so current congestion must
        # not silence it (otherwise a node that collapsed to one hot pool
        # would never learn to recreate low-frequency pools).
        desired = scale.max
        for level in scale.levels:
            level_queue = self.node.store.level_queue_estimate(level)
            if (level_queue + self._predict_t_run(level, job) + t_block
                    <= budget):
                desired = level
                break
        if desired < min(p.frequency_ghz for p in pools) - 1e-12:
            job.wanted_lower_freq = True

        # Normal path: cheapest feasible existing pool (pools are sorted by
        # frequency, and lower frequency == lower energy).
        for pool in pools:
            t_run = self._predict_t_run(pool.frequency_ghz, job)
            if (pool.estimated_queue_seconds() + t_run + t_block
                    <= budget):
                job.chosen_freq_ghz = pool.frequency_ghz
                job.registered_run_seconds = t_run
                self._submit(pool, job)
                return
        self._escalate(job, pools, t_block, budget)

    def _escalate(self, job: Job, pools: List[CorePoolScheduler],
                  t_block: float, budget: float) -> None:
        """The three strategies of Section VI-D, in order."""
        scale = self.node.scale
        # A deadline that is unreachable even at the top frequency with an
        # empty queue cannot be rescued: run the job at max on the
        # shortest queue, but do NOT punish a whole pool (raising a cold
        # pool's frequency for a lost cause would wreck every co-located
        # energy decision until the next refresh).
        if self._predict_t_run(scale.max, job) + t_block > budget:
            best = min(pools, key=lambda p: p.estimated_queue_seconds())
            job.chosen_freq_ghz = scale.max
            job.boosted = True
            job.registered_run_seconds = self._predict_t_run(scale.max, job)
            self.boost_strategy_counts[2] += 1
            self._submit(best, job)
            return
        # Strategy 1: keep the queue at pool speed, boost only this job
        # when its turn comes.
        for pool in pools:
            queue = pool.estimated_queue_seconds()
            for level in scale.at_or_above(pool.frequency_ghz)[1:]:
                if queue + self._predict_t_run(level, job) + t_block <= budget:
                    job.chosen_freq_ghz = level
                    job.boosted = True
                    job.registered_run_seconds = self._predict_t_run(
                        level, job)
                    self.boost_strategy_counts[0] += 1
                    self._submit(pool, job)
                    return
        # Strategy 2: raise a whole pool so queued jobs drain faster too.
        for pool in pools:
            queue = pool.estimated_queue_seconds()
            for level in scale.at_or_above(pool.frequency_ghz)[1:]:
                scaled_queue = queue * pool.frequency_ghz / level
                if (scaled_queue + self._predict_t_run(level, job) + t_block
                        <= budget):
                    self.node.raise_pool_frequency(pool, level)
                    job.chosen_freq_ghz = level
                    job.boosted = True
                    job.registered_run_seconds = self._predict_t_run(
                        level, job)
                    self.boost_strategy_counts[1] += 1
                    self._submit(pool, job)
                    return
        # Strategy 3: the deadline is likely lost — shortest queue at the
        # highest frequency limits the damage.
        best = min(pools, key=lambda p:
                   p.estimated_queue_seconds() * p.frequency_ghz / scale.max)
        self.node.raise_pool_frequency(best, scale.max)
        job.chosen_freq_ghz = scale.max
        job.boosted = True
        job.registered_run_seconds = self._predict_t_run(scale.max, job)
        self.boost_strategy_counts[2] += 1
        self._submit(best, job)

    def _make_correction(self, job: Job, t_block_pred: float):
        """The paper's corrective action (Section V): at each dispatch,
        raise this invocation's frequency if the time already lost to
        queueing makes the planned frequency miss the deadline."""
        scale = self.node.scale

        def correct(planned_freq: float) -> float:
            if job.deadline_s is None:
                return planned_freq
            budget_left = job.deadline_s - self.node.env.now
            remaining_block = max(0.0, t_block_pred - job.t_block)
            predicted_total = self._predict_t_run(planned_freq, job)
            if predicted_total > 0:
                progress = min(1.0, job.t_run / predicted_total)
            else:
                progress = 1.0
            for level in scale.at_or_above(planned_freq):
                remaining_run = (self._predict_t_run(level, job)
                                 * (1.0 - progress))
                if remaining_run + remaining_block <= budget_left:
                    return level
            return scale.max

        return correct

    # ------------------------------------------------------------------
    # Profiling (Section VI-B: handlers measure and save every execution)
    # ------------------------------------------------------------------
    def record_completion(self, job: Job) -> None:
        """Fold a finished invocation back into the profile."""
        self.node.store.queue_ewma(self.fn_model.name).update(job.t_queue)
        if job.chosen_freq_ghz is not None:
            self.node.store.level_queue_ewma(
                job.chosen_freq_ghz).update(job.t_queue)
        if not job.freq_run_seconds:
            return
        if job.cold_start:
            # The measured T_Run includes container boot; mixing it into
            # the warm-execution profile would poison every prediction.
            return
        # Attribute the measurement to the frequency the job mostly ran at.
        dominant = max(job.freq_run_seconds, key=job.freq_run_seconds.get)
        self.profile.observe(dominant, job.t_run, job.t_block,
                             job.energy_j, job.spec.features)
        self.node.store.note_observation()
        guard = self.node.env.guard
        if guard is not None:
            guard.note_observation(self.fn_model.name)
