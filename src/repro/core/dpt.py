"""The Delay-Power Table and SLO → per-function deadline splitting.

Section VI-A: the Workflow Controller keeps, per application, a table with
the predicted execution time ``t_fj^Fi = T_Run + T_Block + T_Queue`` and
energy ``E_fj^Fi`` of each function at each frequency, and solves

    minimise   Σ E_fj^Fi
    subject to Σ t_fj^Fi <= SLO,   one frequency per function,

where parallel children of a stage contribute the *slowest* member's time
(Fig. 9's structure). That max() is linearised with one continuous
stage-time variable per stage, keeping the program a true MILP.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.milp import MilpProblem, solve_milp
from repro.hardware.frequency import FrequencyScale
from repro.obs.prof import profiled
from repro.workloads.applications import Workflow


class DelayPowerTable:
    """Per-application (function, frequency) → (time, energy) predictions."""

    def __init__(self, scale: FrequencyScale):
        self.scale = scale
        self._entries: Dict[Tuple[str, float], Tuple[float, float]] = {}

    def update(self, function_name: str, freq_ghz: float,
               time_s: float, energy_j: float) -> None:
        """Insert or refresh one entry."""
        if freq_ghz not in self.scale:
            raise ValueError(
                f"{freq_ghz} GHz is not a level of {self.scale.levels}")
        if time_s < 0 or energy_j < 0:
            raise ValueError("time and energy must be non-negative")
        self._entries[(function_name, freq_ghz)] = (time_s, energy_j)

    def entry(self, function_name: str,
              freq_ghz: float) -> Optional[Tuple[float, float]]:
        return self._entries.get((function_name, freq_ghz))

    def has_function(self, function_name: str) -> bool:
        """True when every frequency level is populated for the function."""
        return all((function_name, f) in self._entries for f in self.scale)

    def times(self, function_name: str) -> Dict[float, float]:
        return {f: self._entries[(function_name, f)][0]
                for f in self.scale if (function_name, f) in self._entries}

    def energies(self, function_name: str) -> Dict[float, float]:
        return {f: self._entries[(function_name, f)][1]
                for f in self.scale if (function_name, f) in self._entries}


@dataclass(frozen=True)
class DeadlineSplit:
    """The result of splitting an SLO across a workflow."""

    #: Chosen frequency per function (the tick marks of Fig. 9).
    frequencies: Dict[str, float]
    #: Time budget per stage, seconds.
    stage_budgets: List[float]
    #: Predicted total energy of the plan, joules.
    energy_j: float
    #: Whether the plan fits inside the SLO.
    feasible: bool
    #: The solver ran out of its node budget (repro.guard safe mode):
    #: the plan is an unproven incumbent or the max-frequency fallback.
    solver_exhausted: bool = False

    def function_deadlines(self, workflow: Workflow,
                           arrival_s: float) -> Dict[str, float]:
        """Absolute per-function deadlines (cumulative stage budgets)."""
        deadlines: Dict[str, float] = {}
        elapsed = arrival_s
        for stage, budget in zip(workflow.stages, self.stage_budgets):
            elapsed += budget
            for fn in stage.functions:
                deadlines[fn.name] = elapsed
        return deadlines


@profiled("core.dpt")
def split_deadlines(workflow: Workflow, slo_s: float,
                    dpt: DelayPowerTable,
                    max_nodes: Optional[int] = None) -> DeadlineSplit:
    """Minimise total energy under the SLO via MILP (Section VI-A).

    Requires a fully populated DPT for every function of the workflow.
    When even the all-max-frequency plan misses the SLO the problem is
    infeasible; the returned split then uses the fastest plan and marks
    ``feasible=False`` (the system will boost at run time).

    ``max_nodes`` caps the branch-and-bound node count (repro.guard's
    safe-mode budget); a capped solve that ran out of nodes marks the
    split ``solver_exhausted=True`` so callers can fall back.
    """
    if slo_s <= 0:
        raise ValueError(f"SLO must be positive: {slo_s}")
    for fn in workflow.functions:
        if not dpt.has_function(fn.name):
            raise KeyError(f"DPT is missing entries for {fn.name!r}")

    levels = list(dpt.scale)
    functions = workflow.functions
    n_stages = len(workflow.stages)
    n_x = len(functions) * len(levels)
    n_vars = n_x + n_stages

    def x_index(fn_idx: int, level_idx: int) -> int:
        return fn_idx * len(levels) + level_idx

    c = np.zeros(n_vars)
    for i, fn in enumerate(functions):
        energies = dpt.energies(fn.name)
        for j, level in enumerate(levels):
            c[x_index(i, j)] = energies[level]
    # Stage-time variables carry no direct cost.

    # One frequency per function.
    a_eq = np.zeros((len(functions), n_vars))
    for i in range(len(functions)):
        for j in range(len(levels)):
            a_eq[i, x_index(i, j)] = 1.0
    b_eq = np.ones(len(functions))

    # Member time <= stage time, and Σ stage times <= SLO.
    rows = []
    rhs = []
    fn_stage = {fn.name: workflow.stage_of(fn.name) for fn in functions}
    for i, fn in enumerate(functions):
        row = np.zeros(n_vars)
        times = dpt.times(fn.name)
        for j, level in enumerate(levels):
            row[x_index(i, j)] = times[level]
        row[n_x + fn_stage[fn.name]] = -1.0
        rows.append(row)
        rhs.append(0.0)
    slo_row = np.zeros(n_vars)
    slo_row[n_x:] = 1.0
    rows.append(slo_row)
    rhs.append(slo_s)

    bounds = [(0.0, 1.0)] * n_x + [(0.0, slo_s)] * n_stages
    integer_mask = np.array([True] * n_x + [False] * n_stages)
    problem = MilpProblem(c=c, integer_mask=integer_mask,
                          a_ub=np.array(rows), b_ub=np.array(rhs),
                          a_eq=a_eq, b_eq=b_eq, bounds=bounds)
    if max_nodes is None:
        solution = solve_milp(problem)
    else:
        solution = solve_milp(problem, max_nodes=max_nodes)

    if not solution.ok:
        return _fastest_plan(workflow, dpt, slo_s,
                             solver_exhausted=solution.exhausted)

    frequencies: Dict[str, float] = {}
    for i, fn in enumerate(functions):
        for j, level in enumerate(levels):
            if solution.x[x_index(i, j)] > 0.5:
                frequencies[fn.name] = level
                break
    # Stage budgets from the chosen plan (tight maxima, not the LP's slack
    # variables, which may be loose when the SLO constraint is inactive).
    budgets = []
    for stage in workflow.stages:
        budgets.append(max(
            dpt.times(fn.name)[frequencies[fn.name]]
            for fn in stage.functions))
    # Distribute leftover SLO slack proportionally: the paper's deadlines
    # consume the whole SLO budget (Fig. 10's t_B is a full allocation).
    total = sum(budgets)
    if 0 < total < slo_s:
        scale_up = slo_s / total
        budgets = [b * scale_up for b in budgets]
    return DeadlineSplit(frequencies=frequencies, stage_budgets=budgets,
                         energy_j=float(solution.objective), feasible=True,
                         solver_exhausted=solution.exhausted)


def _fastest_plan(workflow: Workflow, dpt: DelayPowerTable,
                  slo_s: float,
                  solver_exhausted: bool = False) -> DeadlineSplit:
    """All functions at the top frequency (the infeasible-SLO fallback)."""
    top = dpt.scale.max
    frequencies = {fn.name: top for fn in workflow.functions}
    budgets = [max(dpt.times(fn.name)[top] for fn in stage.functions)
               for stage in workflow.stages]
    energy = sum(dpt.energies(fn.name)[top] for fn in workflow.functions)
    return DeadlineSplit(frequencies=frequencies, stage_budgets=budgets,
                         energy_j=energy, feasible=False,
                         solver_exhausted=solver_exhausted)


@profiled("core.dpt")
def split_deadlines_exhaustive(workflow: Workflow, slo_s: float,
                               dpt: DelayPowerTable,
                               max_combinations: int = 2_000_000
                               ) -> DeadlineSplit:
    """Exact enumeration over all frequency assignments (cross-check).

    Exponential in the function count — use only for small workflows (the
    test-suite verifies the MILP against this).
    """
    levels = list(dpt.scale)
    functions = workflow.functions
    n_combos = len(levels) ** len(functions)
    if n_combos > max_combinations:
        raise ValueError(
            f"{n_combos} combinations exceed the cap {max_combinations}")
    best: Optional[DeadlineSplit] = None
    for combo in itertools.product(levels, repeat=len(functions)):
        frequencies = {fn.name: freq
                       for fn, freq in zip(functions, combo)}
        budgets = [max(dpt.times(fn.name)[frequencies[fn.name]]
                       for fn in stage.functions)
                   for stage in workflow.stages]
        if sum(budgets) > slo_s + 1e-9:
            continue
        energy = sum(dpt.energies(fn.name)[frequencies[fn.name]]
                     for fn in functions)
        if best is None or energy < best.energy_j:
            best = DeadlineSplit(frequencies, budgets, energy, True)
    if best is None:
        return _fastest_plan(workflow, dpt, slo_s)
    return best
