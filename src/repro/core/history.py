"""The per-function History Table (Fig. 11).

Stores the most recent executions of a function: ``T_Run`` and ``Energy``
per frequency (they depend on the core clock), ``T_Block`` globally (it
does not), and — for the input-aware predictor — the invocation's input
features. The table is bounded (the paper keeps the last 100 invocations)
and is saved/restored with the function's context across unload/reload, so
a reloaded function does not start cold (Section VI-B).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

#: Paper's configuration: keep the last 100 invocations.
DEFAULT_CAPACITY = 100


@dataclass(frozen=True)
class HistoryRow:
    """One measured invocation."""

    freq_ghz: float
    t_run_s: float
    t_block_s: float
    energy_j: float
    features: Dict[str, float]


class HistoryTable:
    """Bounded per-function execution history."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._rows: Deque[HistoryRow] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> List[HistoryRow]:
        return list(self._rows)

    def record(self, freq_ghz: float, t_run_s: float, t_block_s: float,
               energy_j: float,
               features: Optional[Dict[str, float]] = None) -> None:
        """Append one measured execution."""
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be positive: {freq_ghz}")
        if min(t_run_s, t_block_s, energy_j) < 0:
            raise ValueError("measurements must be non-negative")
        self._rows.append(HistoryRow(
            freq_ghz, t_run_s, t_block_s, energy_j,
            dict(features or {})))

    # ------------------------------------------------------------------
    # Views the predictors consume
    # ------------------------------------------------------------------
    def runs_by_frequency(self) -> Dict[float, List[float]]:
        """T_Run samples grouped by the frequency they ran at."""
        grouped: Dict[float, List[float]] = {}
        for row in self._rows:
            grouped.setdefault(row.freq_ghz, []).append(row.t_run_s)
        return grouped

    def energy_by_frequency(self) -> Dict[float, List[float]]:
        grouped: Dict[float, List[float]] = {}
        for row in self._rows:
            grouped.setdefault(row.freq_ghz, []).append(row.energy_j)
        return grouped

    def block_samples(self) -> List[float]:
        """T_Block samples (frequency-independent, Fig. 11)."""
        return [row.t_block_s for row in self._rows]

    def feature_rows(self) -> List[Tuple[Dict[str, float], float, float]]:
        """(features, t_run at fmax-equivalent, t_block) training triples.

        T_Run is normalised to the row's frequency by assuming full
        compute scaling — adequate as a training target because the model
        learns relative input effects, not absolute frequency behaviour.
        """
        return [(row.features, row.t_run_s * row.freq_ghz, row.t_block_s)
                for row in self._rows]

    # ------------------------------------------------------------------
    # Context save/restore (unload-survival, Section VI-B)
    # ------------------------------------------------------------------
    def save(self) -> List[HistoryRow]:
        """Serialise for the function's saved context."""
        return list(self._rows)

    @classmethod
    def restore(cls, saved: List[HistoryRow],
                capacity: int = DEFAULT_CAPACITY) -> "HistoryTable":
        """Rebuild a table from a saved context."""
        table = cls(capacity)
        for row in saved:
            table._rows.append(row)
        return table
