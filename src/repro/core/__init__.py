"""EcoFaaS: the paper's primary contribution.

The energy-management framework of Sections V–VI:

* :mod:`~repro.core.ewma` — EWMA with Holt-Winters trend and adaptive
  (Trigg-Leach) smoothing.
* :mod:`~repro.core.history` — the per-function History Table (Fig. 11).
* :mod:`~repro.core.mlp` — the 3-layer ReLU network for input-aware
  execution-time prediction (Section VI-E2), in NumPy, trained online.
* :mod:`~repro.core.predictor` — per-function frequency profiles: estimate
  ``T_Run`` / ``T_Block`` / ``Energy`` at any frequency from measurements
  at a few frequencies.
* :mod:`~repro.core.milp` — branch-and-bound Mixed-Integer Linear
  Programming (the Workflow Controller's solver) plus an exact DP
  cross-check.
* :mod:`~repro.core.dpt` — the Delay-Power Table and SLO → per-function
  deadline splitting (Section VI-A).
* :mod:`~repro.core.transfer` — linear-regression transfer learning across
  heterogeneous server types (Section VI-E3).
* :mod:`~repro.core.dispatcher` — the Energy-Aware Function Dispatcher
  (Section VI-B) with the three boost strategies of Section VI-D.
* :mod:`~repro.core.node` — Core Pools, the per-node elastic controller,
  and the EcoFaaS :class:`~repro.platform.system.NodeSystem`.
* :mod:`~repro.core.workflow_controller` — the SLO-aware Workflow
  Controller with container prewarming (Sections VI-A, VI-E1).
* :mod:`~repro.core.system` — the assembled
  :class:`~repro.platform.system.ClusterSystem`.
"""

from repro.core.config import EcoFaaSConfig
from repro.core.dpt import DelayPowerTable, split_deadlines
from repro.core.ewma import AdaptiveEwma
from repro.core.history import HistoryTable
from repro.core.milp import MilpProblem, solve_milp
from repro.core.mlp import MLPRegressor
from repro.core.predictor import FrequencyProfile
from repro.core.system import EcoFaaSSystem
from repro.core.transfer import TransferModel

__all__ = [
    "AdaptiveEwma",
    "DelayPowerTable",
    "EcoFaaSConfig",
    "EcoFaaSSystem",
    "FrequencyProfile",
    "HistoryTable",
    "MLPRegressor",
    "MilpProblem",
    "TransferModel",
    "solve_milp",
    "split_deadlines",
]
