"""The SLO-Aware Workflow Controller (Sections VI-A, VI-E1).

One controller per application. It maintains the Delay-Power Table from
the functions' shared profiles, re-solves the MILP deadline split every
``T_update``, hands out absolute per-function deadlines at admission, and
prewarms missing containers off the critical path at the lowest frequency
that still beats the predecessors' deadlines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.baselines.powerctrl import proportional_deadlines
from repro.core.config import EcoFaaSConfig
from repro.core.dpt import DeadlineSplit, DelayPowerTable, split_deadlines
from repro.core.profiles import ProfileStore
from repro.sim.engine import Environment
from repro.workloads.applications import Workflow

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster


class WorkflowController:
    """Per-application SLO splitting and prewarming."""

    def __init__(self, env: Environment, workflow: Workflow,
                 store: ProfileStore, config: EcoFaaSConfig):
        self.env = env
        self.workflow = workflow
        self.store = store
        self.config = config
        self.dpt = DelayPowerTable(store.scale)
        self._split: Optional[DeadlineSplit] = None
        self._split_computed_at = -float("inf")
        self._last_slo: Optional[float] = None
        #: Statistics.
        self.milp_runs = 0

    # ------------------------------------------------------------------
    # Deadline assignment
    # ------------------------------------------------------------------
    def deadlines(self, arrival_s: float, slo_s: float) -> Dict[str, float]:
        """Absolute per-function deadlines for one admission."""
        if self._stale(slo_s):
            ha = getattr(self.env, "ha", None)
            if ha is None or ha.authorize_split(self.workflow.name):
                self._recompute(slo_s)
            # Epoch fencing (repro.ha): with no authorized leader the
            # previous split stays in force; the next admission retries.
        if self._split is None:
            # Profiles are not ready: proportional split (the same policy
            # Baseline+PowerCtrl uses) until the DPT is populated.
            return proportional_deadlines(self.workflow, arrival_s, slo_s)
        return self._split.function_deadlines(self.workflow, arrival_s)

    def _stale(self, slo_s: float) -> bool:
        if self._last_slo is None or abs(slo_s - self._last_slo) > 1e-9:
            return True
        return (self.env.now - self._split_computed_at
                >= self.config.t_update_s)

    def _recompute(self, slo_s: float) -> None:
        self._split_computed_at = self.env.now
        self._last_slo = slo_s
        audit = self.env.audit
        if not all(self.store.ready(fn.name)
                   for fn in self.workflow.functions):
            self._split = None
            if audit is not None:
                pending = [fn.name for fn in self.workflow.functions
                           if not self.store.ready(fn.name)]
                audit.record(
                    "milp_split", f"controller:{self.workflow.name}",
                    inputs={"slo_s": slo_s, "profiles_pending": pending},
                    action={"split": "proportional"},
                    alternatives=[{"split": "milp",
                                   "rejected": "profiles not ready"}],
                    reason="function profiles incomplete; proportional"
                           " split until the DPT is populated")
            return
        self._populate_dpt()
        if self.config.use_milp:
            guard = getattr(self.env, "guard", None)
            budget = guard.milp_node_budget if guard is not None else None
            split = split_deadlines(self.workflow, slo_s, self.dpt,
                                    max_nodes=budget)
            self.milp_runs += 1
            if guard is not None and split.solver_exhausted:
                # Safe mode: an unproven plan is not trusted — use the
                # proportional split until the next T_update.
                guard.record_milp_fallback(self.workflow.name)
                self._split = None
                if audit is not None:
                    audit.record(
                        "milp_split", f"controller:{self.workflow.name}",
                        inputs={"slo_s": slo_s, "node_budget": budget},
                        action={"split": "proportional"},
                        alternatives=[{
                            "split": "milp",
                            "rejected": "solver budget exhausted"}],
                        reason="MILP exhausted its branch-and-bound node"
                               " budget; safe-mode proportional split")
            else:
                self._split = split
                if audit is not None:
                    audit.record(
                        "milp_split", f"controller:{self.workflow.name}",
                        inputs={"slo_s": slo_s, "node_budget": budget},
                        action={"split": "milp",
                                "frequencies": dict(split.frequencies),
                                "stage_budgets": [
                                    round(b, 6)
                                    for b in split.stage_budgets],
                                "energy_j": round(split.energy_j, 6),
                                "feasible": split.feasible},
                        alternatives=[{"split": "proportional",
                                       "rejected": "MILP plan is cheaper"
                                                   " and proven"}],
                        reason="MILP deadline split chosen"
                               if split.feasible else
                               "no feasible plan; fastest-frequency"
                               " fallback plan chosen")
        else:
            self._split = None  # ablation: proportional split only

    def _populate_dpt(self) -> None:
        """DPT entries t = T_Run(f) + T_Block + T_Queue, E = Energy(f)."""
        for fn in self.workflow.functions:
            profile = self.store.profile_by_name(fn.name)
            t_block = profile.predict_t_block()
            for level in self.store.scale:
                t_run = profile.predict_t_run(level)
                t_queue = self.store.level_queue_estimate(level)
                energy = profile.predict_energy(level)
                self.dpt.update(fn.name, level,
                                t_run + t_block + t_queue, energy)

    # ------------------------------------------------------------------
    # Prewarming (Section VI-E1)
    # ------------------------------------------------------------------
    def prewarm(self, cluster: "Cluster", arrival_s: float,
                deadlines: Dict[str, float]) -> None:
        """Boot missing containers for downstream stages in the background.

        Each missing function's cold start gets the sum of its
        predecessors' budgets (it only has to be warm by the time its
        stage starts); stage-0 functions get no prewarm — their cold start
        is on the critical path and handled at high frequency by the
        dispatcher.
        """
        for stage_index, stage in enumerate(self.workflow.stages):
            if stage_index == 0:
                continue
            for fn in stage.functions:
                node = cluster.pick_node()
                if node is None:
                    # Every node is down (crash storm): nothing to warm.
                    return
                if node.containers.state(fn.name) != "cold":
                    continue
                previous_stage = self.workflow.stages[stage_index - 1]
                predecessor = previous_stage.functions[0].name
                budget = max(deadlines[predecessor] - arrival_s, 1e-3)
                node.prewarm(fn, budget, self.workflow.name)
