#!/usr/bin/env python3
"""Explore the synthetic Azure-like traces (the Fig. 7 characterization).

Generates a production-pattern trace, prints the churn statistics the
paper quotes (distinct functions per window, burstiness, popularity
skew), and renders the request-rate timeline as a terminal sparkline.

Run with::

    python examples/trace_analysis.py
"""

import numpy as np

from repro import reports
from repro.traces.azure import (
    AzureTraceConfig,
    generate_azure_trace,
    map_to_benchmarks,
)
from repro.workloads.registry import benchmark_names


def main() -> None:
    config = AzureTraceConfig.evaluation(duration_s=300.0, seed=0)
    trace = generate_azure_trace(config)
    print(f"trace: {len(trace)} invocations of {config.n_functions}"
          f" functions over {config.duration_s:.0f} s"
          f" ({trace.mean_rate_rps:.0f} RPS)\n")

    print("distinct functions per window (the Fig. 7 churn):")
    for label, window in (("1s", 1.0), ("10s", 10.0), ("1min", 60.0)):
        counts = np.array(trace.distinct_per_window(window))
        print(f"  {label:>4s}: mean {counts.mean():6.1f}   p99"
              f" {np.percentile(counts, 99):6.0f}   max {counts.max():4d}")

    counts = np.array(trace.count_per_window(1.0))
    print(f"\nburstiness: index of dispersion (var/mean of 1s counts) ="
          f" {counts.var() / counts.mean():.1f}  (Poisson would be 1.0)")
    print("request rate over time (1s buckets):")
    samples = [(float(i), float(c)) for i, c in enumerate(counts)]
    print("  " + reports.timeline(samples, width=70))

    popular = trace.benchmarks()[:12]
    share = sum(trace.invocation_counts()[fn] for fn in popular) / len(trace)
    print(f"\ntop-12 functions carry {100 * share:.0f}% of invocations"
          f" (paper: 76%)")

    mapped = map_to_benchmarks(trace, benchmark_names())
    print("\nafter mapping the top-12 to the evaluated benchmarks:")
    chart = {name: float(count)
             for name, count in sorted(mapped.invocation_counts().items(),
                                       key=lambda kv: -kv[1])}
    print(reports.bar_chart(chart, width=40))


if __name__ == "__main__":
    main()
