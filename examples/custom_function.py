#!/usr/bin/env python3
"""Bring your own function: model, profile, and run a custom workload.

Shows the full user-facing workflow for extending the library: define a
FunctionModel (with an input-sensitivity model), compose a two-function
application, and run it under EcoFaaS — then inspect what the predictor
learned about it.

Run with::

    python examples/custom_function.py
"""

from repro.core import EcoFaaSSystem
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.trace import Trace, TraceEvent
from repro.workloads.applications import Workflow, WorkflowStage
from repro.workloads.inputs import FeatureSpec, SyntheticInputSpace
from repro.workloads.model import FunctionModel, InputModel

# 1. Describe the inputs: a relevant size feature plus irrelevant noise.
thumbnail_space = SyntheticInputSpace("thumbnails", (
    FeatureSpec("image_mb", "lognormal", (2.0, 0.5), relevant=True),
    FeatureSpec("user_tier", "choice", (1.0, 2.0, 3.0)),
))

# 2. Describe the function: 40 ms of mostly-compute work at 3 GHz that
#    scales linearly with the image size, plus 60 ms of storage I/O.
resize = FunctionModel(
    name="Custom.resize",
    run_seconds_at_max=0.040,
    compute_fraction=0.6,
    block_seconds=0.060,
    n_blocks=2,
    cold_start_seconds=0.35,
    input_model=InputModel(
        thumbnail_space, lambda f: f["image_mb"] / 2.0))

# 3. A tiny second stage that stores the result.
store = FunctionModel(
    name="Custom.store",
    run_seconds_at_max=0.004,
    compute_fraction=0.45,
    block_seconds=0.030,
    n_blocks=1,
    cold_start_seconds=0.25)

pipeline = Workflow("CustomPipeline", (
    WorkflowStage((resize,)),
    WorkflowStage((store,)),
))


def main() -> None:
    print(f"app: {pipeline.name}, {pipeline.n_functions} functions,"
          f" warm latency {pipeline.warm_latency(3.0) * 1000:.1f} ms,"
          f" SLO {pipeline.slo_seconds() * 1000:.0f} ms")

    # 4. Drive 25 RPS of it for 30 s.
    events = [TraceEvent(t * 0.04, pipeline.name)
              for t in range(int(30 / 0.04))]
    trace = Trace(events, duration_s=30.0)

    env = Environment()
    system = EcoFaaSSystem()
    cluster = Cluster(env, system,
                      ClusterConfig(n_servers=1, seed=0, drain_s=15.0))
    cluster.run_trace(trace, workflows={pipeline.name: pipeline})

    metrics = cluster.metrics
    print(f"\ncompleted: {metrics.completed_workflows()},"
          f" p99 {metrics.latency_p99() * 1000:.1f} ms,"
          f" SLO miss {100 * metrics.slo_violation_rate():.1f} %,"
          f" energy {cluster.total_energy_j / 1000:.2f} kJ")

    # 5. Ask the learned profile what it believes about the function.
    profile = system.store.profile_by_name("Custom.resize")
    print(f"\nlearned profile of Custom.resize"
          f" ({profile.observations} observations):")
    for freq in (1.2, 1.8, 2.4, 3.0):
        t_run = profile.predict_t_run(freq)
        energy = profile.predict_energy(freq)
        print(f"  {freq:.1f} GHz: T_run {t_run * 1000:6.1f} ms,"
              f" energy {energy * 1000:6.1f} mJ")
    print(f"  T_block: {profile.predict_t_block() * 1000:.1f} ms")
    small = profile.predict_t_run(3.0, {"image_mb": 1.0, "user_tier": 1.0})
    large = profile.predict_t_run(3.0, {"image_mb": 6.0, "user_tier": 1.0})
    print(f"  input-aware: 1MB -> {small * 1000:.1f} ms,"
          f" 6MB -> {large * 1000:.1f} ms")


if __name__ == "__main__":
    main()
