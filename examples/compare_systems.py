#!/usr/bin/env python3
"""Compare Baseline, Baseline+PowerCtrl, and EcoFaaS head to head.

Replays the same Azure-like production trace (the paper's Section VIII-A
workload) on all three systems and prints the energy / latency /
SLO-compliance comparison — a miniature of Figs. 12 and 16.

Run with::

    python examples/compare_systems.py [--duration 60] [--servers 5]
"""

import argparse

from repro.baselines import BaselineSystem, PowerCtrlSystem
from repro.core import EcoFaaSSystem
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.azure import (
    AzureTraceConfig,
    generate_azure_trace,
    map_to_benchmarks,
)
from repro.workloads.registry import benchmark_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--servers", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    raw = generate_azure_trace(
        AzureTraceConfig.evaluation(duration_s=args.duration,
                                    seed=args.seed))
    trace = map_to_benchmarks(raw, benchmark_names())
    print(f"trace: {len(trace)} invocations, {trace.mean_rate_rps:.0f} RPS,"
          f" {args.servers} servers\n")

    systems = [BaselineSystem(), PowerCtrlSystem(), EcoFaaSSystem()]
    rows = []
    for system in systems:
        env = Environment()
        cluster = Cluster(env, system,
                          ClusterConfig(n_servers=args.servers,
                                        seed=args.seed, drain_s=20.0))
        cluster.run_trace(trace)
        metrics = cluster.metrics
        rows.append((system.name,
                     cluster.total_energy_j / 1000,
                     metrics.latency_avg() * 1000,
                     metrics.latency_p99() * 1000,
                     100 * metrics.slo_violation_rate()))

    header = f"{'system':22s} {'energy kJ':>10s} {'avg ms':>8s}" \
             f" {'p99 ms':>8s} {'SLO miss %':>11s}"
    print(header)
    print("-" * len(header))
    base_energy = rows[0][1]
    for name, energy, avg, p99, miss in rows:
        print(f"{name:22s} {energy:10.2f} {avg:8.1f} {p99:8.1f}"
              f" {miss:11.1f}   ({energy / base_energy:.2f}x baseline"
              f" energy)")


if __name__ == "__main__":
    main()
