#!/usr/bin/env python3
"""How the SLO multiple trades latency slack for energy.

EcoFaaS converts whatever slack the user grants into lower frequencies.
This example sweeps the application SLO from 2x to 10x the warm latency
for the eBook multi-function workflow and shows the resulting energy,
latency, and frequency mix — the knob a real operator would reason about.

Run with::

    python examples/slo_sweep.py
"""

from repro.core import EcoFaaSSystem
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.poisson import PoissonLoadConfig, generate_poisson_trace

# Compute-bound training: the frequency floor actually binds here
# (at 1.2 GHz one invocation takes ~2.1x its 3 GHz latency).
BENCHMARK = "MLTrain"
SLO_MULTIPLES = (1.3, 1.6, 2.0, 3.0, 5.0)


def main() -> None:
    trace = generate_poisson_trace(PoissonLoadConfig(
        benchmarks=[BENCHMARK], rate_rps=6.0, duration_s=40.0, seed=2))
    print(f"workflow: {BENCHMARK}; {len(trace)} invocations\n")
    header = (f"{'SLO multiple':>12s} {'energy kJ':>10s} {'avg ms':>8s}"
              f" {'p99 ms':>8s} {'miss %':>7s} {'mean GHz':>9s}")
    print(header)
    print("-" * len(header))
    for multiple in SLO_MULTIPLES:
        env = Environment()
        cluster = Cluster(env, EcoFaaSSystem(),
                          ClusterConfig(n_servers=2, seed=0, drain_s=20.0,
                                        slo_multiple=multiple))
        cluster.run_trace(trace)
        metrics = cluster.metrics
        histogram = metrics.frequency_time_histogram()
        total_time = sum(histogram.values())
        mean_freq = sum(f * t for f, t in histogram.items()) / total_time
        print(f"{multiple:12.1f} {cluster.total_energy_j / 1000:10.2f}"
              f" {metrics.latency_avg() * 1000:8.1f}"
              f" {metrics.latency_p99() * 1000:8.1f}"
              f" {100 * metrics.slo_violation_rate():7.1f}"
              f" {mean_freq:9.2f}")
    print("\ntakeaway: looser SLOs let EcoFaaS shift run time to lower"
          " frequencies, cutting energy at the cost of (deliberate)"
          " latency.")


if __name__ == "__main__":
    main()
