#!/usr/bin/env python3
"""Capacity planning with a synthetic function population.

Generates a random 20-function population (the paper's characterization
covers 100+ functions; the calibrated suite is only its evaluation
subset), then asks: at a fixed request rate, how many servers does each
system need to keep SLO violations under 5 %, and what does the energy
bill look like? This is the operator question EcoFaaS's energy savings
ultimately answer.

Run with::

    python examples/capacity_planning.py
"""

import numpy as np

from repro.baselines import BaselineSystem
from repro.core import EcoFaaSSystem
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.trace import Trace, TraceEvent
from repro.workloads.applications import Workflow
from repro.workloads.synthetic import synthesize_population

RATE_RPS = 60.0
DURATION_S = 30.0
TARGET_VIOLATION = 0.05


def build_trace(names, seed=0):
    rng = np.random.default_rng(seed)
    events, t = [], 0.0
    while True:
        t += float(rng.exponential(1.0 / RATE_RPS))
        if t >= DURATION_S:
            break
        events.append(TraceEvent(t, names[rng.integers(len(names))]))
    return Trace(events, DURATION_S)


def evaluate(system_factory, workflows, trace, n_servers):
    env = Environment()
    cluster = Cluster(env, system_factory(),
                      ClusterConfig(n_servers=n_servers, seed=0,
                                    drain_s=30.0))
    cluster.run_trace(trace, workflows=workflows)
    metrics = cluster.metrics
    return (metrics.slo_violation_rate(), cluster.total_energy_j,
            metrics.latency_p99())


def main() -> None:
    rng = np.random.default_rng(42)
    functions = synthesize_population(20, rng)
    workflows = {f.name: Workflow.single(f) for f in functions}
    trace = build_trace(list(workflows))
    mean_core_s = float(np.mean(
        [f.run_seconds(3.0) for f in functions]))
    print(f"population: 20 synthetic functions, mean on-core time"
          f" {mean_core_s * 1000:.0f} ms; offered load {RATE_RPS:.0f} RPS"
          f" (~{RATE_RPS * mean_core_s:.1f} cores at 3 GHz)\n")

    header = (f"{'system':10s} {'servers':>8s} {'SLO miss':>9s}"
              f" {'p99 s':>7s} {'energy kJ':>10s}")
    print(header)
    print("-" * len(header))
    for label, factory in (("Baseline", BaselineSystem),
                           ("EcoFaaS", EcoFaaSSystem)):
        for n_servers in (1, 2, 3, 4):
            violation, energy, p99 = evaluate(
                factory, workflows, trace, n_servers)
            marker = " <- first config meeting the target" \
                if violation <= TARGET_VIOLATION else ""
            print(f"{label:10s} {n_servers:8d} {100 * violation:8.1f}%"
                  f" {p99:7.2f} {energy / 1000:10.2f}{marker}")
            if violation <= TARGET_VIOLATION:
                break
        print()


if __name__ == "__main__":
    main()
