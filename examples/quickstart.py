#!/usr/bin/env python3
"""Quickstart: run one serverless benchmark under EcoFaaS.

Builds a 2-server cluster, drives 30 seconds of Poisson CNNServ traffic
through the EcoFaaS system, and prints the latency / SLO / energy summary
along with the per-invocation frequency choices EcoFaaS made.

Run with::

    python examples/quickstart.py
"""

from repro.core import EcoFaaSSystem
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.poisson import PoissonLoadConfig, generate_poisson_trace
from repro.workloads.registry import workflow_for


def main() -> None:
    benchmark = "CNNServ"
    workflow = workflow_for(benchmark)
    print(f"benchmark: {benchmark}")
    print(f"  warm latency @3.0GHz: {workflow.warm_latency(3.0) * 1000:.1f} ms")
    print(f"  SLO (5x warm):        {workflow.slo_seconds() * 1000:.1f} ms")

    trace = generate_poisson_trace(PoissonLoadConfig(
        benchmarks=[benchmark], rate_rps=40.0, duration_s=30.0, seed=1))
    print(f"trace: {len(trace)} requests over {trace.duration_s:.0f} s")

    env = Environment()
    cluster = Cluster(env, EcoFaaSSystem(),
                      ClusterConfig(n_servers=2, seed=0, drain_s=15.0))
    cluster.run_trace(trace)

    metrics = cluster.metrics
    print("\nresults:")
    print(f"  completed workflows: {metrics.completed_workflows()}")
    print(f"  avg latency:  {metrics.latency_avg() * 1000:.1f} ms")
    print(f"  p99 latency:  {metrics.latency_p99() * 1000:.1f} ms")
    print(f"  SLO misses:   {100 * metrics.slo_violation_rate():.1f} %")
    print(f"  total energy: {cluster.total_energy_j / 1000:.2f} kJ")

    print("\nchosen core frequencies (invocations):")
    for freq, count in sorted(metrics.frequency_histogram().items()):
        print(f"  {freq:.1f} GHz: {count}")

    print("\nenergy by component (J):")
    for component, joules in cluster.energy_by_component().items():
        print(f"  {component:14s} {joules:10.1f}")


if __name__ == "__main__":
    main()
