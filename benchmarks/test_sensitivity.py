"""Benches for the sensitivity studies (Figs. 19-23, §VIII-D, ablations)."""

from repro.experiments import (
    ablations,
    fig19_prediction_error,
    fig20_update_sensitivity,
    fig21_pool_granularity,
    fig22_variability,
    fig23_colocation,
    section8d_overheads,
)


def test_fig19_overprediction(run_experiment):
    result = run_experiment(fig19_prediction_error)
    for level in ("low", "medium", "high"):
        row = result.row_for(load=level)
        # More overprediction can only cost energy (within noise).
        assert row["err80pct"] >= row["err0pct"] - 0.02, level


def test_fig20_update_periods(run_experiment):
    result = run_experiment(fig20_update_sensitivity)
    # The chosen operating points must not be clearly dominated: no swept
    # setting may beat them by more than a small margin.
    assert min(row["norm_energy"] for row in result.rows) > 0.85


def test_fig21_pool_granularity(run_experiment):
    result = run_experiment(fig21_pool_granularity)
    fine = result.row_for(granularity_mhz=50)
    native = result.row_for(granularity_mhz=300)
    coarse = result.row_for(granularity_mhz=600)
    # Finer steps fragment the node into more pools.
    assert fine["pools_mean"] >= native["pools_mean"] >= coarse["pools_mean"]
    # The native granularity yields the paper's 1-6 pools.
    assert native["pools_max"] <= 8


def test_fig22_variability(run_experiment):
    result = run_experiment(fig22_variability)
    # At the nominal dispersion the model stays accurate for every fn.
    nominal = [row["error_pct"] for row in result.rows
               if row["dispersion"] == 0.25]
    assert max(nominal) < 10.0
    # Error never decreases dramatically as variability explodes.
    for fn in {row["function"] for row in result.rows}:
        errors = [row["error_pct"] for row in result.rows
                  if row["function"] == fn]
        assert errors[-1] >= errors[0] - 1.0, fn


def test_fig23_colocation(run_experiment):
    result = run_experiment(fig23_colocation)
    base = [row["mj_per_inv_Baseline"] for row in result.rows]
    eco = [row["mj_per_inv_EcoFaaS"] for row in result.rows]
    # EcoFaaS stays cheaper than Baseline at every co-location level.
    assert all(e < b for e, b in zip(eco, base))


def test_section8d_overheads(run_experiment):
    result = run_experiment(section8d_overheads)
    milp = [row["value"] for row in result.rows
            if row["component"] == "milp_solver"]
    assert max(milp) < 100.0  # ms; paper: ~10ms
    mlp = result.row_for(component="mlp_predict")
    assert mlp["value"] < 1000.0  # us
    t_run_mape = result.row_for(component="ewma_mape", config="t_run")
    assert t_run_mape["value"] < 5.0  # %; paper: 1.8%


def test_ablations(run_experiment):
    result = run_experiment(ablations)
    full = result.row_for(variant="full")
    rtc = result.row_for(variant="rtc")
    no_prewarm = result.row_for(variant="no-prewarm")
    # Run-to-completion hurts the tail badly (the Fig. 5 insight).
    assert rtc["p99_s"] > full["p99_s"]
    # Prewarming removes critical-path cold starts.
    assert no_prewarm["cold_starts"] >= full["cold_starts"]
