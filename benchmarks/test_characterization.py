"""Benches for the characterization experiments (Table I, Figs. 2-7)."""

import numpy as np

from repro.experiments import (
    fig02_freq_sensitivity,
    fig03_resource_sensitivity,
    fig04_input_prediction,
    fig05_rtc_vs_cs,
    fig06_switch_overhead,
    fig07_trace_cdf,
    table1_benchmarks,
)


def test_table1(run_experiment):
    result = run_experiment(table1_benchmarks)
    assert len(result.rows) == 12
    apps = {row["benchmark"]: row["functions"] for row in result.rows
            if row["kind"] == "application"}
    assert apps == {"MLTune": 6, "DataAn": 8, "eBank": 6, "eBook": 7,
                    "VidAn": 3}


def test_fig02_frequency_sensitivity(run_experiment):
    result = run_experiment(fig02_freq_sensitivity)
    web = result.row_for(function="WebServ", freq_ghz=1.2)
    assert web["norm_response_time"] < 1.25   # paper: +12%
    assert web["norm_energy"] < 0.65          # paper: -47%
    cnn = result.row_for(function="CNNServ", freq_ghz=2.1)
    assert 1.1 < cnn["norm_response_time"] < 1.4   # paper: +23%
    assert cnn["norm_energy"] < 0.75               # paper: -40%
    # Response time decreases monotonically with frequency for every fn.
    for fn in {row["function"] for row in result.rows}:
        times = [row["norm_response_time"] for row in result.rows
                 if row["function"] == fn]
        assert times == sorted(times, reverse=True)


def test_fig03_resource_insensitivity(run_experiment):
    result = run_experiment(fig03_resource_sensitivity)
    four_ways = [row["norm_response_time"] for row in result.rows
                 if row["knob"] == "llc_ways" and row["setting"] == 4]
    assert max(four_ways) < 1.10              # paper: at most +6%
    bw20 = [row["norm_response_time"] for row in result.rows
            if row["knob"] == "membw" and row["setting"] == 0.2]
    assert max(bw20) < 1.08                   # paper: at most +4%


def test_fig04_input_prediction(run_experiment):
    result = run_experiment(fig04_input_prediction)
    average = result.row_for(function="average")
    assert average["error_selected_pct"] < 10.0   # paper: 3.6%
    assert average["error_all_pct"] < 12.0        # paper: 3.8%
    # Training on all features costs little vs selected features.
    assert (average["error_all_pct"]
            < average["error_selected_pct"] + 5.0)


def test_fig05_context_switch_on_idle(run_experiment):
    result = run_experiment(fig05_rtc_vs_cs)
    average = result.row_for(function="average")
    assert average["norm_energy_cs"] < 0.95   # CS saves energy (paper -42%)
    # Idle-heavy functions benefit more than compute-bound ones.
    imgproc = result.row_for(function="ImgProc")["norm_energy_cs"]
    mltrain = result.row_for(function="MLTrain")["norm_energy_cs"]
    assert imgproc < mltrain


def test_fig06_switch_overhead(run_experiment):
    result = run_experiment(fig06_switch_overhead)
    ratios = {row["function"]: row["norm_throughput_switch"]
              for row in result.rows}
    assert float(np.mean(list(ratios.values()))) < 0.9  # paper: -24%
    # The shortest function loses the most throughput.
    assert ratios["WebServ"] == min(ratios.values())


def test_fig07_trace_churn(run_experiment):
    result = run_experiment(fig07_trace_cdf)
    one_second = result.row_for(window="1s")
    assert 1.5 <= one_second["mean"] <= 6.0   # paper: ~3
    means = [row["mean"] for row in result.rows]
    assert means == sorted(means)             # larger window, more functions
