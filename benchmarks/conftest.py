"""Benchmark-suite helpers.

Every bench runs one experiment harness exactly once (they simulate whole
clusters; repeating them inside pytest-benchmark's calibration loop would
take hours) and asserts the paper's qualitative shape on the result.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run ``module.run(quick=True)`` once under the benchmark timer."""

    def runner(module, **kwargs):
        kwargs.setdefault("quick", True)
        kwargs.setdefault("seed", 0)
        return benchmark.pedantic(
            module.run, kwargs=kwargs, rounds=1, iterations=1)

    return runner
