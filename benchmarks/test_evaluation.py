"""Benches for the main evaluation (Figs. 12-18)."""

from repro.experiments import (
    fig12_energy_trace,
    fig13_energy_load,
    fig14_freq_timeline,
    fig15_freq_distribution,
    fig16_tail_latency,
    fig17_throughput,
    fig18_latency_vs_load,
)


def test_fig12_energy_on_real_trace(run_experiment):
    result = run_experiment(fig12_energy_trace)
    total = result.row_for(benchmark="TOTAL(cluster)")
    # Paper shape: EcoFaaS < PowerCtrl < Baseline on total energy.
    assert total["norm_EcoFaaS"] < total["norm_Baseline"]
    assert total["norm_EcoFaaS"] < total["norm_Baseline+PowerCtrl"]
    active = result.row_for(benchmark="TOTAL(core-active)")
    assert active["norm_EcoFaaS"] < active["norm_Baseline+PowerCtrl"]


def test_fig13_energy_vs_load(run_experiment):
    result = run_experiment(fig13_energy_load)
    for level in ("low", "medium", "high"):
        row = result.row_for(load=level)
        assert row["norm_EcoFaaS"] < row["norm_Baseline"], level
        # Within noise, EcoFaaS never loses to PowerCtrl.
        assert (row["norm_EcoFaaS"]
                <= row["norm_Baseline+PowerCtrl"] + 0.02), level
    # Baseline energy grows with load.
    lows = result.row_for(load="low")["norm_Baseline"]
    highs = result.row_for(load="high")["norm_Baseline"]
    assert lows < highs


def test_fig14_frequency_timeline(run_experiment):
    result = run_experiment(fig14_freq_timeline)
    base = result.row_for(system="Baseline", time_s=-1.0)
    eco = result.row_for(system="EcoFaaS", time_s=-1.0)
    assert base["avg_freq_ghz"] == 3.0           # Baseline pinned at max
    assert eco["avg_freq_ghz"] < 2.8             # EcoFaaS well below


def test_fig15_frequency_distribution(run_experiment):
    result = run_experiment(fig15_freq_distribution)
    shares = {row["freq_ghz"]: row["share_pct"] for row in result.rows}
    below_2ghz = shares[1.2] + shares[1.5] + shares[1.8]
    assert below_2ghz > 40.0          # paper: >50%
    assert shares[3.0] < 50.0         # far from Baseline's 100% at max


def test_fig16_tail_latency(run_experiment):
    result = run_experiment(fig16_tail_latency)
    # The paper's headline metric is the cluster-wide tail: EcoFaaS beats
    # PowerCtrl decisively and stays in Baseline's neighbourhood, with the
    # contrast strongest under load (the per-benchmark normalized rows are
    # dominated by short benchmarks' tiny absolute latencies at light
    # load, where EcoFaaS *deliberately* runs near its deadline).
    for level in ("medium", "high"):
        row = result.row_for(benchmark=f"ALL({level})")
        assert row["norm_EcoFaaS"] < row["norm_Baseline+PowerCtrl"], level
    high = result.row_for(benchmark="ALL(high)")
    assert high["norm_EcoFaaS"] < 1.4  # paper: 0.95x Baseline


def test_fig17_throughput(run_experiment):
    result = run_experiment(fig17_throughput)
    for row in result.rows:
        # EcoFaaS sustains at least PowerCtrl's load everywhere.
        assert row["norm_EcoFaaS"] >= row["norm_Baseline+PowerCtrl"], row


def test_fig18_cnnserv_latency_curve(run_experiment):
    result = run_experiment(fig18_latency_vs_load)
    slo = result.rows[0]["slo_s"]

    def crossing(column):
        for row in result.rows:
            value = row[column]
            if value == "saturated" or value > slo:
                return row["rate_rps"]
        return float("inf")

    # PowerCtrl violates the SLO at (or before) the load where
    # Baseline/EcoFaaS do.
    assert crossing("p99_Baseline+PowerCtrl") <= crossing("p99_EcoFaaS")
