"""Microbenchmarks of the library's hot primitives.

Unlike the figure benches (one full cluster simulation each), these use
pytest-benchmark conventionally: many fast iterations of the kernels that
dominate simulation wall time.
"""

import numpy as np

from repro.core.dpt import DelayPowerTable, split_deadlines
from repro.core.ewma import AdaptiveEwma
from repro.core.mlp import MLPRegressor
from repro.core.predictor import FrequencyProfile
from repro.hardware.core import Core
from repro.hardware.energy import EnergyMeter
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.hardware.work import WorkUnit
from repro.platform.job import Job
from repro.platform.scheduler import CorePoolScheduler
from repro.sim import Environment
from repro.workloads.applications import Workflow, WorkflowStage
from repro.workloads.functionbench import CNN_SERV
from repro.workloads.model import FunctionModel
from repro.workloads.spec import InvocationSpec, RunSegment


def test_event_loop_throughput(benchmark):
    """Events processed per loop pass (the simulator's base cost)."""

    def run_loop():
        env = Environment()
        for i in range(1000):
            env.timeout(float(i) * 1e-3)
        env.run()
        return env.now

    assert benchmark(run_loop) > 0


def test_process_switch_throughput(benchmark):
    """Generator-process resume cost."""

    def run_processes():
        env = Environment()

        def ping():
            for _ in range(100):
                yield env.timeout(0.001)

        for _ in range(10):
            env.process(ping())
        env.run()
        return env.now

    benchmark(run_processes)


def test_scheduler_dispatch_throughput(benchmark):
    """Submit+run 500 short jobs through one pool."""

    def run_pool():
        env = Environment()
        meter = EnergyMeter()
        power = PowerModel()
        cores = [Core(env, i, power, meter, 3.0) for i in range(4)]
        pool = CorePoolScheduler(env, cores, frequency_ghz=3.0)
        for _ in range(500):
            spec = InvocationSpec("f", [RunSegment(WorkUnit(0.003))])
            pool.submit(Job(env, spec, "b", arrival_s=env.now))
        env.run()
        return pool.stats.served

    assert benchmark(run_pool) == 500


def test_invocation_sampling(benchmark):
    rng = np.random.default_rng(0)
    spec = benchmark(lambda: CNN_SERV.sample_invocation(rng))
    assert spec.function_name == "CNNServ"


def test_mlp_prediction_latency(benchmark):
    model = MLPRegressor(8, seed=0)
    model.partial_fit([[1.0] * 8] * 16, [1.0] * 16)
    row = [1.0] * 8
    value = benchmark(model.predict_one, row)
    assert value > 0


def test_mlp_training_step(benchmark):
    model = MLPRegressor(8, seed=0)
    rng = np.random.default_rng(0)
    x = rng.uniform(1, 5, size=(32, 8))
    y = x[:, 0]
    benchmark(model.partial_fit, x, y)


def test_ewma_update(benchmark):
    ewma = AdaptiveEwma()
    ewma.update(1.0)

    def update_forecast():
        ewma.update(1.1)
        return ewma.forecast()

    benchmark(update_forecast)


def test_profile_prediction(benchmark):
    profile = FrequencyProfile(FrequencyScale(), PowerModel())
    for freq in (3.0, 2.1, 1.2):
        for _ in range(10):
            profile.observe(freq, 0.2 * 3.0 / freq, 0.05, 1.0)
    value = benchmark(profile.predict_t_run, 1.8)
    assert value > 0


def test_milp_deadline_split(benchmark):
    """The Workflow Controller's solver (paper: ~10ms)."""
    scale = FrequencyScale()
    power = PowerModel()
    functions = tuple(
        FunctionModel(name=f"f{i}", run_seconds_at_max=0.02 * (i + 1),
                      compute_fraction=0.6, block_seconds=0.0, n_blocks=0,
                      cold_start_seconds=0.1)
        for i in range(6))
    workflow = Workflow("bench", tuple(
        WorkflowStage((fn,)) for fn in functions))
    dpt = DelayPowerTable(scale)
    for fn in functions:
        for level in scale:
            t = fn.run_seconds(level)
            dpt.update(fn.name, level, t, t * power.core_active_power(level))
    slo = 1.5 * workflow.warm_latency(scale.min)
    split = benchmark(split_deadlines, workflow, slo, dpt)
    assert split.feasible
